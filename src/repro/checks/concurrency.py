"""Ownership & lifecycle verification for the process-parallel layer.

The REPRO3xx rule family (the ``repro-race`` CLI) statically proves the
concurrency contracts DESIGN.md sections 9-10 *state* — the disciplines
the distributed-correctness argument hinges on:

* **Segment lifecycle as a state machine** (REPRO301-304).  Every
  ``SharedMemory`` create happens in the coordinator's publish module
  and is dominated by a close/unlink on all exit paths (try/finally
  analysis); workers only attach read-only, copy, and drop — they never
  write through attached buffers and never unlink.
* **Cross-process channel audit** (REPRO305-306).  The only data
  crossing a pool boundary is shm descriptors, pickled compact tuples,
  deletion logs, halo rows and counter/span deltas.  Closures and task
  arguments capturing ``NetworkGraph``/engine/tracer objects at
  ``parallel_starmap``/``ShardWorkerPool``/``submit`` sites are flagged.
* **Fork-inheritance safety** (REPRO307).  Module-level mutable state
  (ambient tracer, warm worker engine, chaos stream) must be
  re-initialized in a worker bootstrap or derived from the env-exported
  knobs, the way ``REPRO_SANITIZE`` already is — anything else is a
  stale copy in every forked worker.
* **The knob registry** (REPRO308).  Every ``os.environ`` access of a
  ``REPRO_*`` name must be declared in :mod:`repro.knobs`, and literal
  defaults must match the registry's.

Rules run through the shared :class:`~repro.checks.engine.LintEngine`,
so inline ``# repro: allow[...]`` suppressions, the committed baseline
and the stable text/JSON reports behave exactly like ``repro-lint``.

The runtime witness for the happens-before claims these rules make is
the ``REPRO_CHAOS`` sanitizer (:mod:`repro.parallel.runner`): it
permutes completion/consumption order at every pool barrier and injects
seeded worker delays while CI asserts schedules stay byte-identical.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro import knobs as _knobs
from repro.checks.engine import Finding, ModuleContext, Rule
from repro.checks.rules import _dotted, _import_map, _resolve, _snippet

#: Directories the ownership/lifecycle rules apply to.
_SCOPE = ("repro/parallel/", "repro/shard/", "repro/topology/", "repro/obs/")

#: The only module allowed to create or unlink shared segments.
_PUBLISH_MODULE = "repro/parallel/shm.py"

#: Worker-side (attach/copy/drop) modules: the consumer half of shm.
_WORKER_MODULES = ("repro/shard/segment.py", "repro/shard/runtime.py")

#: Coordinator-side factory functions returning owned segment handles.
_PUBLISHERS = ("publish_blocks", "publish_graph", "publish_partition")

#: Names whose presence in a pool-boundary argument means a rich
#: coordinator object would cross the process boundary.
_RICH_NAMES = frozenset(
    {
        "graph",
        "engine",
        "tracer",
        "metrics",
        "registry",
        "sim",
        "network",
        "exchange",
        "pool",
        "work",
    }
)

#: Teardown methods that may discharge a class attribute's segment.
_TEARDOWN_METHODS = frozenset(
    {"close", "__exit__", "__del__", "shutdown", "stop", "teardown"}
)

#: Function-name shapes accepted as re-initialization hooks (REPRO307).
_REINIT_NAME = re.compile(
    r"^_?(init|reset|enable|disable|clear|install|activate|deactivate)"
)


def _in_scope(path: str) -> bool:
    return any(part in path for part in _SCOPE)


def _is_worker_module(path: str) -> bool:
    return any(part in path for part in _WORKER_MODULES)


def _functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.FunctionDef, Optional[ast.ClassDef]]]:
    """Every function/method with its enclosing class (None at module level)."""

    def walk(node: ast.AST, owner: Optional[ast.ClassDef]) -> Iterator[
        Tuple[ast.FunctionDef, Optional[ast.ClassDef]]
    ]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, owner  # type: ignore[misc]
                yield from walk(child, owner)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, child)
            else:
                yield from walk(child, owner)

    yield from walk(tree, None)


def _is_create_call(node: ast.AST, imports: Dict[str, str]) -> bool:
    """``SharedMemory(create=True, ...)`` — a raw segment creation."""
    if not isinstance(node, ast.Call):
        return False
    target = _resolve(node.func, imports) or _dotted(node.func) or ""
    if not target.endswith("SharedMemory"):
        return False
    for kw in node.keywords:
        if kw.arg == "create":
            value = kw.value
            return bool(
                isinstance(value, ast.Constant) and value.value is True
            )
    return False


def _is_publisher_call(node: ast.AST, imports: Dict[str, str]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    target = _resolve(node.func, imports) or _dotted(node.func) or ""
    return target.rsplit(".", 1)[-1] in _PUBLISHERS


def _creator_calls(
    fn: ast.FunctionDef, imports: Dict[str, str]
) -> List[ast.Call]:
    return [
        node
        for node in ast.walk(fn)
        if isinstance(node, ast.Call)
        and (_is_create_call(node, imports) or _is_publisher_call(node, imports))
    ]


def _mentions_name(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node)
    )


def _protected_positions(fn: ast.FunctionDef) -> List[ast.AST]:
    """Statements that run on exceptional exits: finally and handler bodies."""
    covered: List[ast.AST] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Try):
            for stmt in node.finalbody:
                covered.extend(ast.walk(stmt))
            for handler in node.handlers:
                for stmt in handler.body:
                    covered.extend(ast.walk(stmt))
    return covered


class ShmCreateScopeRule(Rule):
    """Raw segment creation outside the coordinator's publish module."""

    rule_id = "REPRO301"
    name = "shm-create-scope"
    summary = "SharedMemory(create=True) outside the publish module"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _in_scope(ctx.rel_path) or _PUBLISH_MODULE in ctx.rel_path:
            return
        imports = _import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if _is_create_call(node, imports):
                yield self.finding(
                    ctx,
                    node,
                    "SharedMemory(create=True) outside the coordinator's "
                    f"publish module ({_PUBLISH_MODULE}): only the "
                    "coordinator creates segments; workers attach",
                )


class ShmLifecycleRule(Rule):
    """Every created segment is dominated by a close on all exit paths."""

    rule_id = "REPRO302"
    name = "shm-lifecycle"
    summary = "segment create not dominated by close/unlink on all exit paths"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _in_scope(ctx.rel_path):
            return
        imports = _import_map(ctx.tree)
        for fn, owner in _functions(ctx.tree):
            for call in _creator_calls(fn, imports):
                yield from self._check_binding(ctx, fn, owner, call)

    # ------------------------------------------------------------------
    def _check_binding(
        self,
        ctx: ModuleContext,
        fn: ast.FunctionDef,
        owner: Optional[ast.ClassDef],
        call: ast.Call,
    ) -> Iterator[Finding]:
        # `with publish_...() as x:` discharges the handle by construction.
        for node in ast.walk(fn):
            if isinstance(node, ast.With):
                for item in node.items:
                    if item.context_expr is call:
                        return
        # `return publish_blocks(...)`: ownership transfers to the caller.
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                if call in ast.walk(node.value):
                    return
        binding = self._binding_of(fn, call)
        if binding is None:
            yield self.finding(
                ctx,
                call,
                f"segment handle of '{_snippet(call)}' is dropped: bind it "
                "and close it on every exit path (with / try-finally)",
            )
            return
        kind, name = binding
        if kind == "attr":
            if owner is None or not self._class_discharges(owner, name):
                yield self.finding(
                    ctx,
                    call,
                    f"segment stored on self.{name} but the class has no "
                    "teardown (close/__exit__/...) that closes it — the "
                    "coordinator must unlink on every exit path",
                )
            return
        # Local-name binding: returned, or closed under try/finally.
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                if _mentions_name(node.value, name):
                    return
        protected = _protected_positions(fn)
        closes = [
            node
            for node in ast.walk(fn)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("close", "unlink")
            and _mentions_name(node.func.value, name)
        ]
        if not closes:
            yield self.finding(
                ctx,
                call,
                f"segment '{name}' from '{_snippet(call)}' is never closed "
                "in this function and never returned — it leaks in /dev/shm",
            )
        elif not any(node in protected for node in closes):
            yield self.finding(
                ctx,
                call,
                f"segment '{name}' is closed only on the fall-through path; "
                "an exception between create and close leaks it — move the "
                "close into a finally (or use the handle as a context "
                "manager)",
            )

    def _binding_of(
        self, fn: ast.FunctionDef, call: ast.Call
    ) -> Optional[Tuple[str, str]]:
        """How the creator's result is held: ('local'|'attr', name)."""
        local: Optional[str] = None
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and node.value is call:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    local = target.id
                elif isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name
                ) and target.value.id == "self":
                    return "attr", target.attr
        if local is None:
            return None
        # A local appended onto / stored into a self attribute is owned
        # by the class (e.g. self._segments.append(segment)).
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "add")
                and isinstance(node.func.value, ast.Attribute)
                and isinstance(node.func.value.value, ast.Name)
                and node.func.value.value.id == "self"
                and any(_mentions_name(arg, local) for arg in node.args)
            ):
                return "attr", node.func.value.attr
        return "local", local

    def _class_discharges(self, owner: ast.ClassDef, attr: str) -> bool:
        """Does any teardown method of ``owner`` close ``self.<attr>``?"""
        for node in owner.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name not in _TEARDOWN_METHODS:
                continue
            touches_attr = any(
                isinstance(sub, ast.Attribute)
                and sub.attr == attr
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
                for sub in ast.walk(node)
            )
            calls_close = any(
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("close", "unlink")
                for sub in ast.walk(node)
            )
            if touches_attr and calls_close:
                return True
        return False


class ShmWorkerDisciplineRule(Rule):
    """Workers attach/copy/drop: no unlink, no writes through attachments."""

    rule_id = "REPRO303"
    name = "shm-worker-discipline"
    summary = "worker-side unlink or write through an attached buffer"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _in_scope(ctx.rel_path):
            return
        imports = _import_map(ctx.tree)
        if _PUBLISH_MODULE not in ctx.rel_path:
            yield from self._check_unlink(ctx, imports)
        if _is_worker_module(ctx.rel_path):
            yield from self._check_writes(ctx, imports)

    def _check_unlink(
        self, ctx: ModuleContext, imports: Dict[str, str]
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "unlink"
            ):
                continue
            receiver = _resolve(node.func.value, imports) or ""
            # Filesystem unlink (os.unlink, Path.unlink) is not segment
            # lifecycle; everything else is coordinator-only.
            if receiver.startswith(("os", "pathlib")):
                continue
            yield self.finding(
                ctx,
                node,
                "unlink outside the coordinator's publish module: workers "
                "and consumers never unlink segments (the coordinator owns "
                "the lifecycle)",
            )

    def _check_writes(
        self, ctx: ModuleContext, imports: Dict[str, str]
    ) -> Iterator[Finding]:
        for fn, __ in _functions(ctx.tree):
            attached: Set[str] = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call
                ):
                    target = _resolve(node.value.func, imports) or (
                        _dotted(node.value.func) or ""
                    )
                    if target.endswith("frombuffer") and isinstance(
                        node.targets[0], ast.Name
                    ):
                        attached.add(node.targets[0].id)
                if (
                    isinstance(node, ast.Call)
                    and (
                        (_resolve(node.func, imports) or "") == "mmap.mmap"
                    )
                    and not any(
                        (_dotted(arg) or "").endswith("ACCESS_READ")
                        for arg in list(node.args)
                        + [kw.value for kw in node.keywords]
                    )
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "worker-side mmap without ACCESS_READ: attachments "
                        "are read-only (copy into private engine state)",
                    )
            for node in ast.walk(fn):
                target = None
                if isinstance(node, ast.Assign):
                    target = node.targets[0]
                elif isinstance(node, ast.AugAssign):
                    target = node.target
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in attached
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"write through attached buffer "
                        f"'{target.value.id}': workers copy out of "
                        "segments, never into them",
                    )


class ShmAttachDropRule(Rule):
    """Attachments are unmapped in a finally (attach -> copy -> drop)."""

    rule_id = "REPRO304"
    name = "shm-attach-drop"
    summary = "attachment not closed in a finally block"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _in_scope(ctx.rel_path):
            return
        imports = _import_map(ctx.tree)
        for fn, __ in _functions(ctx.tree):
            for node in ast.walk(fn):
                if not (
                    isinstance(node, ast.Call)
                    and (
                        (_resolve(node.func, imports) or "")
                        .rsplit(".", 1)[-1]
                        == "attach_blocks"
                    )
                ):
                    continue
                yield from self._check_site(ctx, fn, node)

    def _check_site(
        self, ctx: ModuleContext, fn: ast.FunctionDef, call: ast.Call
    ) -> Iterator[Finding]:
        # `return attach_blocks(...)` hands the pair to the caller.
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                if call in ast.walk(node.value):
                    return
        handle: Optional[str] = None
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and node.value is call:
                target = node.targets[0]
                if isinstance(target, ast.Tuple) and len(target.elts) == 2:
                    second = target.elts[1]
                    if isinstance(second, ast.Name):
                        handle = second.id
                elif isinstance(target, ast.Name):
                    handle = target.id
        if handle is None:
            yield self.finding(
                ctx,
                call,
                "attachment from attach_blocks is not bound: the mapping "
                "can never be dropped",
            )
            return
        finals: List[ast.AST] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    finals.extend(ast.walk(stmt))
        closed = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "close"
            and _mentions_name(node.func.value, handle)
            for node in finals
        )
        if not closed:
            yield self.finding(
                ctx,
                call,
                f"attachment '{handle}' is not closed in a finally: workers "
                "attach, copy into private state, then drop the mapping on "
                "every exit path",
            )


def _boundary_sites(
    tree: ast.Module, imports: Dict[str, str]
) -> Iterator[Tuple[ast.Call, Optional[ast.AST], List[ast.AST]]]:
    """Pool-boundary call sites: ``(call, callable_expr, payload_exprs)``.

    Yields every place a callable and its arguments are handed to
    another process: ``pool.submit(f, *args)``, ``ProcessPoolExecutor
    (initializer=..., initargs=...)``, ``multiprocessing.Process
    (target=..., args=...)`` and ``parallel_starmap(f, tasks, ...)``.
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        target = _resolve(node.func, imports) or _dotted(node.func) or ""
        tail = target.rsplit(".", 1)[-1]
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        if isinstance(node.func, ast.Attribute) and node.func.attr == "submit":
            if node.args:
                yield node, node.args[0], list(node.args[1:]) + list(
                    kwargs.values()
                )
        elif tail == "ProcessPoolExecutor":
            payload = _tuple_elements(kwargs.get("initargs"))
            yield node, kwargs.get("initializer"), payload
        elif tail == "Process" and "target" in kwargs:
            payload = _tuple_elements(kwargs.get("args"))
            yield node, kwargs.get("target"), payload
        elif tail == "parallel_starmap":
            func = node.args[0] if node.args else kwargs.get("func")
            payload = _tuple_elements(kwargs.get("initargs"))
            if len(node.args) > 1:
                payload.extend(_task_elements(node.args[1]))
            yield node, func, payload


def _tuple_elements(node: Optional[ast.AST]) -> List[ast.AST]:
    if isinstance(node, (ast.Tuple, ast.List)):
        return list(node.elts)
    return [node] if node is not None else []


def _task_elements(node: ast.AST) -> List[ast.AST]:
    """Elements of a literal task list: [(a, b), ...] -> [a, b, ...]."""
    out: List[ast.AST] = []
    if isinstance(node, (ast.List, ast.Tuple)):
        for element in node.elts:
            out.extend(_tuple_elements(element))
    return out


class PoolBoundaryCallableRule(Rule):
    """Pool tasks are module-level functions, never closures/lambdas."""

    rule_id = "REPRO305"
    name = "pool-boundary-callable"
    summary = "closure or lambda handed across a pool boundary"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = _import_map(ctx.tree)
        nested = self._nested_names(ctx.tree)
        for call, func, __ in _boundary_sites(ctx.tree, imports):
            if func is None:
                continue
            if isinstance(func, ast.Lambda):
                yield self.finding(
                    ctx,
                    call,
                    "lambda crosses a pool boundary: task callables must be "
                    "module-level (picklable) functions",
                )
            elif isinstance(func, ast.Name) and func.id in nested:
                yield self.finding(
                    ctx,
                    call,
                    f"nested function '{func.id}' crosses a pool boundary: "
                    "a closure captures coordinator state; hoist it to "
                    "module level",
                )

    def _nested_names(self, tree: ast.Module) -> Set[str]:
        names: Set[str] = set()

        def walk(node: ast.AST, inside_fn: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if inside_fn:
                        names.add(child.name)
                    walk(child, True)
                elif isinstance(child, ast.ClassDef):
                    walk(child, inside_fn)
                else:
                    walk(child, inside_fn)

        walk(tree, False)
        return names


class PoolBoundaryArgsRule(Rule):
    """Only compact data crosses a pool boundary, never rich objects."""

    rule_id = "REPRO306"
    name = "pool-boundary-args"
    summary = "rich coordinator object handed across a pool boundary"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = _import_map(ctx.tree)
        for call, __, payload in _boundary_sites(ctx.tree, imports):
            for arg in payload:
                if arg is None or isinstance(arg, ast.Starred):
                    continue
                name = self._rich_name(arg)
                if name is not None:
                    yield self.finding(
                        ctx,
                        call,
                        f"'{name}' crosses a pool boundary: only shm "
                        "descriptors, compact pickled tuples, deletion "
                        "logs, halo rows and counter/span deltas may "
                        "cross — convert to a compact form first "
                        "(compact_graph_blob / descriptors / payloads)",
                    )

    def _rich_name(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name) and node.id in _RICH_NAMES:
            return node.id
        if isinstance(node, ast.Attribute) and node.attr in _RICH_NAMES:
            return _dotted(node) or node.attr
        return None


class ForkInheritedStateRule(Rule):
    """Module-level mutable state is worker-reinitialized or env-derived."""

    rule_id = "REPRO307"
    name = "fork-inherited-state"
    summary = "runtime-mutated module global without a re-init/env hook"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _in_scope(ctx.rel_path):
            return
        imports = _import_map(ctx.tree)
        module_slots: Dict[str, ast.AST] = {}
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        module_slots[target.id] = node
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                module_slots[node.target.id] = node
        for name, site in sorted(module_slots.items()):
            assigners = self._assigning_functions(ctx.tree, name)
            if not assigners:
                continue  # constant table: never reassigned at runtime
            if any(self._is_reinit_hook(fn, imports) for fn in assigners):
                continue
            hooks = ", ".join(sorted(fn.name for fn in assigners))
            yield self.finding(
                ctx,
                site,
                f"module-level state '{name}' is reassigned at runtime "
                f"(by {hooks}) but never re-initialized in a worker "
                "bootstrap or derived from an env-exported knob: forked "
                "pool workers inherit a stale copy",
            )

    def _assigning_functions(
        self, tree: ast.Module, name: str
    ) -> List[ast.FunctionDef]:
        out: List[ast.FunctionDef] = []
        for fn, __ in _functions(tree):
            declares = any(
                isinstance(node, ast.Global) and name in node.names
                for node in ast.walk(fn)
            )
            if not declares:
                continue
            assigns = any(
                isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign))
                and any(
                    isinstance(t, ast.Name) and t.id == name
                    for t in (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                )
                for node in ast.walk(fn)
            )
            if assigns:
                out.append(fn)
        return out

    def _is_reinit_hook(
        self, fn: ast.FunctionDef, imports: Dict[str, str]
    ) -> bool:
        if _REINIT_NAME.match(fn.name) or fn.name.endswith("_from_env"):
            return True
        # Env-derived state (the REPRO_SANITIZE pattern): the assigning
        # function reads a declared knob, so every worker re-derives the
        # value from the inherited environment.
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                target = _resolve(node.func, imports) or (
                    _dotted(node.func) or ""
                )
                if target.endswith(
                    ("knobs.get_flag", "knobs.get_int", "knobs.get_str")
                ) or target in ("os.getenv", "os.environ.get"):
                    return True
        return False


class KnobRegistryRule(Rule):
    """Every REPRO_* env access is declared in the knob registry."""

    rule_id = "REPRO308"
    name = "knob-registry"
    summary = "undeclared REPRO_* env access or default mismatch"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.rel_path.endswith("repro/knobs.py"):
            return  # the registry's own accessors
        imports = _import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, imports)
            elif isinstance(node, ast.Subscript):
                yield from self._check_subscript(ctx, node, imports)

    def _env_name(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value.startswith("REPRO_"):
                return node.value
        return None

    def _is_environ(self, node: ast.AST, imports: Dict[str, str]) -> bool:
        target = _resolve(node, imports) or _dotted(node) or ""
        return target.endswith("environ")

    def _check_call(
        self, ctx: ModuleContext, node: ast.Call, imports: Dict[str, str]
    ) -> Iterator[Finding]:
        func = node.func
        is_env_method = (
            isinstance(func, ast.Attribute)
            and func.attr in ("get", "pop", "setdefault")
            and self._is_environ(func.value, imports)
        )
        is_getenv = (_resolve(func, imports) or "") == "os.getenv"
        if not (is_env_method or is_getenv):
            return
        if not node.args:
            return
        name = self._env_name(node.args[0])
        if name is None:
            return
        yield from self._check_name(ctx, node, name)
        if name in {k.name for k in _knobs.KNOBS} and len(node.args) > 1:
            default = node.args[1]
            declared = _knobs.knob(name).default
            if (
                declared is not None
                and isinstance(default, ast.Constant)
                and isinstance(default.value, str)
                and default.value != declared
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"default mismatch for {name}: code says "
                    f"{default.value!r}, the registry says {declared!r} — "
                    "one documented default (repro.knobs)",
                )

    def _check_subscript(
        self, ctx: ModuleContext, node: ast.Subscript, imports: Dict[str, str]
    ) -> Iterator[Finding]:
        if not self._is_environ(node.value, imports):
            return
        name = self._env_name(node.slice)
        if name is None:
            return
        yield from self._check_name(ctx, node, name)

    def _check_name(
        self, ctx: ModuleContext, node: ast.AST, name: str
    ) -> Iterator[Finding]:
        if name not in {k.name for k in _knobs.KNOBS}:
            yield self.finding(
                ctx,
                node,
                f"undeclared knob {name}: declare name/type/default/layer "
                "in repro.knobs.KNOBS (the docs table and the bench "
                "fingerprint derive from it)",
            )


#: Rule metadata, mirrored in --list-rules and the docs.
CONCURRENCY_RULES: Tuple[Tuple[str, str, str], ...] = (
    ("REPRO301", "shm-create-scope", ShmCreateScopeRule.summary),
    ("REPRO302", "shm-lifecycle", ShmLifecycleRule.summary),
    ("REPRO303", "shm-worker-discipline", ShmWorkerDisciplineRule.summary),
    ("REPRO304", "shm-attach-drop", ShmAttachDropRule.summary),
    ("REPRO305", "pool-boundary-callable", PoolBoundaryCallableRule.summary),
    ("REPRO306", "pool-boundary-args", PoolBoundaryArgsRule.summary),
    ("REPRO307", "fork-inherited-state", ForkInheritedStateRule.summary),
    ("REPRO308", "knob-registry", KnobRegistryRule.summary),
)


def concurrency_rules() -> Sequence[Rule]:
    """Fresh instances of every REPRO3xx rule, id order."""
    return (
        ShmCreateScopeRule(),
        ShmLifecycleRule(),
        ShmWorkerDisciplineRule(),
        ShmAttachDropRule(),
        PoolBoundaryCallableRule(),
        PoolBoundaryArgsRule(),
        ForkInheritedStateRule(),
        KnobRegistryRule(),
    )

"""Locality flow analysis for the distributed runtime (REPRO21x).

The point of the distributed protocol is that nodes act on *local*
information only: a node's deletability verdict, its MIS vote, and its
view updates must derive from its own gossip-built view and its own
inbox.  Reading the simulator's global graph — or another node's view or
inbox — inside a decision path would be a silent violation of the
paper's model: results could still be correct while the algorithm quietly
stopped being distributed.

These rules make that discipline mechanical:

========  ==================  ===========================================
id        name                catches
========  ==================  ===========================================
REPRO210  global-graph-read   ``sim.graph`` / ``self.sim.graph`` access
                              inside runtime decision code
REPRO211  foreign-view-access  indexing the views table with a node id
                              other than the one currently being
                              processed
REPRO212  inbox-confinement   draining an inbox other than the current
                              node's
========  ==================  ===========================================

Two global reads are legitimate and carry reasoned
``# repro: allow[global-graph-read]`` comments in the source: the
round-0 bootstrap in ``_discover_topology`` (a radio hears its one-hop
neighbours for free) and the result assembly in ``run`` (collected for
the caller after the fixpoint).  The allowlist is *the comment itself* —
an unexplained read fails the build, which is exactly the workflow the
suppression machinery of :mod:`repro.checks.engine` exists for.

The rules fire only inside ``runtime/`` modules that implement protocol
logic; the simulator substrate (``simulator.py``), message schemas, and
stats accounting are exempt because they *are* the global side of the
abstraction.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.checks.engine import Finding, ModuleContext, Rule

#: runtime files that are the substrate, not protocol logic.
_EXEMPT_BASENAMES = {
    "simulator.py",
    "messages.py",
    "stats.py",
    "__init__.py",
}

#: names of mappings holding per-node state; indexing them with anything
#: but the node currently being processed is a locality violation.
_VIEW_TABLE_NAMES = {"views"}


def _applies(ctx: ModuleContext) -> bool:
    path = ctx.rel_path
    if "repro/runtime/" not in path:
        return False
    return path.rsplit("/", 1)[-1] not in _EXEMPT_BASENAMES


def _bound_node_names(tree: ast.Module) -> Set[str]:
    """Names bound as iteration targets, comprehension targets or params.

    These are the identifiers a decision path may legitimately use as
    "the node I am right now": ``for node in sim.active``, a function
    parameter, or a comprehension variable.  Anything else used to index
    per-node state is a foreign access.
    """
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Tuple):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        names.add(elt.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            ):
                names.add(arg.arg)
            if args.vararg:
                names.add(args.vararg.arg)
            if args.kwarg:
                names.add(args.kwarg.arg)
    return names


def _is_sim_ref(node: ast.expr) -> bool:
    """``sim`` / ``self.sim`` / ``<anything>.sim``."""
    if isinstance(node, ast.Name) and node.id == "sim":
        return True
    return isinstance(node, ast.Attribute) and node.attr == "sim"


class GlobalGraphReadRule(Rule):
    """REPRO210: decision code must not read the simulator's graph.

    ``sim.graph`` is the omniscient topology.  A per-node engine's own
    graph (``self._engine.graph``) is local state and is not flagged.
    """

    rule_id = "REPRO210"
    name = "global-graph-read"
    summary = "runtime decision code reads the global simulator graph"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _applies(ctx):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "graph"
                and _is_sim_ref(node.value)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "global topology read in runtime code; per-node "
                    "decisions may only use the node's own view — add a "
                    "reasoned `# repro: allow[global-graph-read]` if this "
                    "is bootstrap or result assembly",
                )


class ForeignViewAccessRule(Rule):
    """REPRO211: a node may only touch its *own* view.

    Indexing the views table with a constant, an arithmetic expression,
    or a name that is not a loop/comprehension/parameter binding means
    some node is reading another node's memory.
    """

    rule_id = "REPRO211"
    name = "foreign-view-access"
    summary = "per-node state indexed by something other than the current node"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _applies(ctx):
            return
        bound = _bound_node_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            index = self._view_subscript(node)
            if index is None:
                continue
            if isinstance(index, ast.Name) and index.id in bound:
                continue
            yield self.finding(
                ctx,
                node,
                "views table indexed by "
                f"`{ast.unparse(index)}`, which is not the node being "
                "processed; a node may only read its own view",
            )
        for node in ast.walk(ctx.tree):
            call = self._view_method_call(node)
            if call is None:
                continue
            index = call
            if isinstance(index, ast.Name) and index.id in bound:
                continue
            yield self.finding(
                ctx,
                node,
                "views table accessed with "
                f"`{ast.unparse(index)}`, which is not the node being "
                "processed; a node may only touch its own view",
            )

    @staticmethod
    def _view_subscript(node: ast.AST) -> ast.expr | None:
        if not isinstance(node, ast.Subscript):
            return None
        base = node.value
        name = (
            base.id
            if isinstance(base, ast.Name)
            else base.attr
            if isinstance(base, ast.Attribute)
            else None
        )
        if name not in _VIEW_TABLE_NAMES:
            return None
        return node.slice

    @staticmethod
    def _view_method_call(node: ast.AST) -> ast.expr | None:
        """First argument of ``views.pop(x, ...)`` / ``views.get(x)``."""
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("pop", "get")
            and node.args
        ):
            return None
        base = node.func.value
        name = (
            base.id
            if isinstance(base, ast.Name)
            else base.attr
            if isinstance(base, ast.Attribute)
            else None
        )
        if name not in _VIEW_TABLE_NAMES:
            return None
        return node.args[0]


class InboxConfinementRule(Rule):
    """REPRO212: a node drains only its own inbox.

    ``sim.inbox(x)`` with ``x`` not bound as the current node means one
    node is reading another's mail.
    """

    rule_id = "REPRO212"
    name = "inbox-confinement"
    summary = "inbox drained for a node other than the one being processed"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _applies(ctx):
            return
        bound = _bound_node_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "inbox"
                and len(node.args) == 1
            ):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Name) and arg.id in bound:
                continue
            yield self.finding(
                ctx,
                node,
                f"inbox drained for `{ast.unparse(arg)}`, which is not "
                "the node being processed; messages are private to their "
                "recipient",
            )


#: (rule id, rule name, summary) for the locality family.
LOCALITY_RULES: Tuple[Tuple[str, str, str], ...] = tuple(
    (r.rule_id, r.name, r.summary)
    for r in (GlobalGraphReadRule, ForeignViewAccessRule, InboxConfinementRule)
)


def default_locality_rules() -> Tuple[Rule, ...]:
    """Fresh instances of the REPRO21x family, in id order."""
    return (
        GlobalGraphReadRule(),
        ForeignViewAccessRule(),
        InboxConfinementRule(),
    )

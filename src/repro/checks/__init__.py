"""Correctness tooling: the determinism linter and the runtime sanitizer.

The reproduction's central guarantees — byte-identical serial-vs-parallel
schedules, associative metric merges, per-node verdict agreement (the
paper's Propositions 2-3 and the VPT of Definition 5) — are invariants of
the *code*, not of any one test.  This package enforces them twice over:

* **Statically** — :mod:`repro.checks.engine` walks source files with an
  AST rule registry (:mod:`repro.checks.rules`) that flags the
  nondeterminism classes known to break the reproduction: unseeded RNGs,
  unordered ``set`` iteration feeding ordering-sensitive sinks, wall
  clock in deterministic paths, layering violations (``obs`` inside the
  kernel), mutable default arguments, bare excepts, float accumulation
  inside mergeable metrics, and public entry points without a ``seed``
  plumb-through.  Findings can be suppressed inline with
  ``# repro: allow[RULE]`` or parked in a committed baseline; the
  ``repro-lint`` CLI (:mod:`repro.checks.cli`) reports the rest.
* **Dynamically** — :mod:`repro.checks.sanitizer` shadow-checks live
  runs (``REPRO_SANITIZE=1`` or ``repro-coverage --sanitize``): every
  fresh CSR-kernel verdict is recomputed on the dict oracle, engine
  cache hits are compared against fresh recomputes, and parallel metric
  merges are re-associated and compared.  Violations surface through the
  obs tracer and raise by default.

A second front, ``repro-verify`` (:mod:`repro.checks.verify_cli`),
verifies the *distributed protocol* rather than determinism: contract
extraction over ``runtime/`` (:mod:`repro.checks.protocol`, REPRO20x),
locality flow analysis (:mod:`repro.checks.locality`, REPRO21x), and
bounded model checking of the extracted contract over all delivery
interleavings on small graphs (:mod:`repro.checks.model`, REPRO22x).

A third front, ``repro-race`` (:mod:`repro.checks.race_cli`), verifies
the *process-parallel layer's ownership and lifecycle contracts*
(:mod:`repro.checks.concurrency`, REPRO30x): the shm segment state
machine (coordinator creates/unlinks, workers attach/copy/drop), the
pool-boundary channel audit (only compact picklable data crosses), the
fork-inheritance discipline for module-level state, and the declared
knob registry (:mod:`repro.knobs`).  Its dynamic counterpart is the
``REPRO_CHAOS`` order sanitizer in :mod:`repro.parallel.runner`, which
adversarially permutes completion/consumption order while CI asserts
schedules stay byte-identical.
"""

from repro.checks.concurrency import CONCURRENCY_RULES, concurrency_rules
from repro.checks.engine import (
    Baseline,
    Finding,
    LintEngine,
    Rule,
    apply_suppressions,
    lint_paths,
    render_json,
    render_text,
)
from repro.checks.locality import default_locality_rules
from repro.checks.model import ModelReport, check_model, graph_catalog
from repro.checks.protocol import (
    ProtocolContract,
    check_constants,
    extract_contract,
)
from repro.checks.rules import DEFAULT_RULES, all_rules
from repro.checks.sanitizer import (
    Sanitizer,
    SanitizerError,
    check_merge_associativity,
    current_sanitizer,
    disable_sanitizer,
    enable_sanitizer,
)

__all__ = [
    "Baseline",
    "CONCURRENCY_RULES",
    "DEFAULT_RULES",
    "Finding",
    "LintEngine",
    "ModelReport",
    "ProtocolContract",
    "Rule",
    "Sanitizer",
    "SanitizerError",
    "all_rules",
    "apply_suppressions",
    "check_constants",
    "check_merge_associativity",
    "check_model",
    "concurrency_rules",
    "current_sanitizer",
    "default_locality_rules",
    "disable_sanitizer",
    "enable_sanitizer",
    "extract_contract",
    "graph_catalog",
    "lint_paths",
    "render_json",
    "render_text",
]

"""Correctness tooling: the determinism linter and the runtime sanitizer.

The reproduction's central guarantees — byte-identical serial-vs-parallel
schedules, associative metric merges, per-node verdict agreement (the
paper's Propositions 2-3 and the VPT of Definition 5) — are invariants of
the *code*, not of any one test.  This package enforces them twice over:

* **Statically** — :mod:`repro.checks.engine` walks source files with an
  AST rule registry (:mod:`repro.checks.rules`) that flags the
  nondeterminism classes known to break the reproduction: unseeded RNGs,
  unordered ``set`` iteration feeding ordering-sensitive sinks, wall
  clock in deterministic paths, layering violations (``obs`` inside the
  kernel), mutable default arguments, bare excepts, float accumulation
  inside mergeable metrics, and public entry points without a ``seed``
  plumb-through.  Findings can be suppressed inline with
  ``# repro: allow[RULE]`` or parked in a committed baseline; the
  ``repro-lint`` CLI (:mod:`repro.checks.cli`) reports the rest.
* **Dynamically** — :mod:`repro.checks.sanitizer` shadow-checks live
  runs (``REPRO_SANITIZE=1`` or ``repro-coverage --sanitize``): every
  fresh CSR-kernel verdict is recomputed on the dict oracle, engine
  cache hits are compared against fresh recomputes, and parallel metric
  merges are re-associated and compared.  Violations surface through the
  obs tracer and raise by default.
"""

from repro.checks.engine import (
    Baseline,
    Finding,
    LintEngine,
    Rule,
    lint_paths,
    render_json,
    render_text,
)
from repro.checks.rules import DEFAULT_RULES, all_rules
from repro.checks.sanitizer import (
    Sanitizer,
    SanitizerError,
    check_merge_associativity,
    current_sanitizer,
    disable_sanitizer,
    enable_sanitizer,
)

__all__ = [
    "Baseline",
    "DEFAULT_RULES",
    "Finding",
    "LintEngine",
    "Rule",
    "Sanitizer",
    "SanitizerError",
    "all_rules",
    "check_merge_associativity",
    "current_sanitizer",
    "disable_sanitizer",
    "enable_sanitizer",
    "lint_paths",
    "render_json",
    "render_text",
]

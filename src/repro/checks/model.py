"""Bounded model checking of the extracted protocol contract (REPRO22x).

The static passes prove *source shapes* — the ttl is decremented, the
relay is guarded, the dedup exists.  This module closes the loop by
*executing* the extracted :class:`~repro.checks.protocol.ProtocolContract`
exhaustively over every delivery-order interleaving the runtime admits,
on a catalog of small graphs (n <= 6), and asserting the properties the
paper's correctness argument rests on:

========  ================  ==============================================
id        name              asserts
========  ================  ==============================================
REPRO220  ttl-termination   every TTL-bounded flood quiesces within its
                            hop budget on every interleaving
REPRO221  flood-coverage    the set of nodes a flood reaches is exactly
                            the origin's radius-ball (k for DELETE,
                            m for PRIORITY), no more, no less — the
                            origin included, since a neighbour echoes
                            the notice back whenever the budget allows
                            a relay
REPRO222  view-convergence  after k gossip rounds every node's view is
                            exactly its k-ball's adjacency rows, and the
                            result is identical on every interleaving
========  ================  ==============================================

Why per-node inbox permutations are *all* the interleavings: the runtime
is round-synchronous (:meth:`Simulator.step` delivers everything sent in
round t at the start of round t+1), nodes share no state within a round,
and the order a node *emits* messages is erased by the next round's
inbox-permutation enumeration.  So the cartesian product of per-node
inbox orders, per round, is exactly the space of global delivery
schedules — enumerating it (at most 5! = 120 orders per node at n <= 6)
is exhaustive, not a sampling.

When an assertion fails, the minimal counterexample — graph, origin,
tau, and the per-round delivery schedule that exposes it — is emitted as
a ``verify.counterexample`` span through the observability layer, so it
lands in run reports next to everything else.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations, permutations
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.checks.engine import Finding
from repro.checks.protocol import FloodSpec, ProtocolContract
from repro.obs.tracer import current_tracer

#: (rule id, rule name, summary) for the model-checking family.
MODEL_RULES: Tuple[Tuple[str, str, str], ...] = (
    ("REPRO220", "ttl-termination", "a flood admits a non-quiescing interleaving"),
    ("REPRO221", "flood-coverage", "flood coverage differs from the radius ball"),
    ("REPRO222", "view-convergence", "gossip views diverge or miss the k-ball"),
)

Edge = Tuple[int, int]
#: a flood message in flight: (origin, ttl)
_Msg = Tuple[int, int]

#: backstop on branching executions per (graph, origin, tau) case; the
#: intact contract is single-path, so hitting this means the contract is
#: already order-sensitive — which is itself reported.
_MAX_EXECUTIONS = 2048


# ----------------------------------------------------------------------
# Graph catalog
# ----------------------------------------------------------------------
def _is_connected(n: int, edges: Sequence[Edge]) -> bool:
    if n <= 1:
        return True
    adj: Dict[int, Set[int]] = {v: set() for v in range(n)}
    for u, v in edges:
        adj[u].add(v)
        adj[v].add(u)
    seen = {0}
    frontier = [0]
    while frontier:
        u = frontier.pop()
        for w in sorted(adj[u]):
            if w not in seen:
                seen.add(w)
                frontier.append(w)
    return len(seen) == n


def _all_connected_graphs(n: int) -> List[Tuple[Edge, ...]]:
    """Every labeled connected graph on ``range(n)`` (edge-subset sweep)."""
    pairs = list(combinations(range(n), 2))
    out: List[Tuple[Edge, ...]] = []
    for mask in range(1 << len(pairs)):
        edges = tuple(p for i, p in enumerate(pairs) if mask >> i & 1)
        if _is_connected(n, edges):
            out.append(edges)
    return out


#: hand-picked shapes where exhaustive enumeration is too wide: extremal
#: diameter (path), symmetry (cycle, complete, bipartite), hubs (star),
#: and bridges between dense clusters.
_FIXED_CATALOG: Dict[int, Tuple[Tuple[Edge, ...], ...]] = {
    5: (
        ((0, 1), (1, 2), (2, 3), (3, 4)),  # path P5
        ((0, 1), (1, 2), (2, 3), (3, 4), (0, 4)),  # cycle C5
        ((0, 1), (0, 2), (0, 3), (0, 4)),  # star K1,4
        tuple(combinations(range(5), 2)),  # complete K5
        ((0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)),  # bowtie
        ((0, 1), (1, 2), (0, 2), (2, 3), (3, 4)),  # lollipop
    ),
    6: (
        ((0, 1), (1, 2), (2, 3), (3, 4), (4, 5)),  # path P6
        ((0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)),  # cycle C6
        ((0, 1), (0, 2), (0, 3), (0, 4), (0, 5)),  # star K1,5
        tuple(combinations(range(6), 2)),  # complete K6
        (  # 2x3 grid
            (0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5),
        ),
        (  # prism C3 x K2
            (0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5),
            (0, 3), (1, 4), (2, 5),
        ),
        (  # complete bipartite K3,3
            (0, 3), (0, 4), (0, 5), (1, 3), (1, 4), (1, 5),
            (2, 3), (2, 4), (2, 5),
        ),
        (  # two triangles joined by a bridge
            (0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3),
        ),
    ),
}


def graph_catalog(max_n: int = 6) -> List[Tuple[int, Tuple[Edge, ...]]]:
    """``(n, edges)`` cases: exhaustive for n <= 4, curated for n in {5, 6}."""
    cases: List[Tuple[int, Tuple[Edge, ...]]] = []
    for n in range(2, min(max_n, 4) + 1):
        cases.extend((n, edges) for edges in _all_connected_graphs(n))
    for n in (5, 6):
        if n <= max_n:
            cases.extend((n, edges) for edges in _FIXED_CATALOG[n])
    return cases


def _adjacency(n: int, edges: Sequence[Edge]) -> Dict[int, FrozenSet[int]]:
    adj: Dict[int, Set[int]] = {v: set() for v in range(n)}
    for u, v in edges:
        adj[u].add(v)
        adj[v].add(u)
    return {v: frozenset(nbrs) for v, nbrs in adj.items()}


def _bfs_distances(
    adj: Dict[int, FrozenSet[int]], source: int
) -> Dict[int, int]:
    dist = {source: 0}
    frontier = [source]
    while frontier:
        nxt: List[int] = []
        for u in frontier:
            for w in sorted(adj[u]):
                if w not in dist:
                    dist[w] = dist[u] + 1
                    nxt.append(w)
        frontier = nxt
    return dist


def _ball(adj: Dict[int, FrozenSet[int]], source: int, radius: int) -> Set[int]:
    dist = _bfs_distances(adj, source)
    return {v for v, d in dist.items() if d <= radius}


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass
class ModelReport:
    """What the bounded model checker covered, plus its findings."""

    taus: Tuple[int, ...] = ()
    max_n: int = 6
    graphs_checked: int = 0
    flood_cases: int = 0
    gossip_cases: int = 0
    interleavings_explored: int = 0
    max_branch_width: int = 1
    truncated_cases: int = 0
    findings: List[Finding] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "taus": list(self.taus),
            "max_n": self.max_n,
            "graphs_checked": self.graphs_checked,
            "flood_cases": self.flood_cases,
            "gossip_cases": self.gossip_cases,
            "interleavings_explored": self.interleavings_explored,
            "max_branch_width": self.max_branch_width,
            "truncated_cases": self.truncated_cases,
        }


# ----------------------------------------------------------------------
# Flood semantics (executes a FloodSpec)
# ----------------------------------------------------------------------
#: per-node flood state: (received origins, relayed origins)
_NodeState = Tuple[FrozenSet[int], FrozenSet[int]]


def _node_step(
    state: _NodeState, inbox: Tuple[_Msg, ...], spec: FloodSpec
) -> Set[Tuple[_NodeState, Tuple[_Msg, ...]]]:
    """All distinct ``(state', sorted outgoing)`` over inbox orders.

    Outgoing messages are returned sorted: the emission order is erased
    by the next round's permutation enumeration, so two orders that
    produce the same multiset are the same outcome.
    """
    outcomes: Set[Tuple[_NodeState, Tuple[_Msg, ...]]] = set()
    for perm in sorted(set(permutations(inbox))):
        received = set(state[0])
        relayed = set(state[1])
        out: List[_Msg] = []
        for origin, ttl in perm:
            received.add(origin)
            relay = True
            if spec.guarded and not ttl > 0:
                relay = False
            if spec.dedup_by_origin and origin in relayed:
                relay = False
            if relay:
                if spec.dedup_by_origin:
                    relayed.add(origin)
                out.append((origin, ttl - 1 if spec.decrements else ttl))
        outcomes.add(
            ((frozenset(received), frozenset(relayed)), tuple(sorted(out)))
        )
    return outcomes


@dataclass
class _FloodResult:
    terminated: bool
    coverages: Set[FrozenSet[int]]
    interleavings: int
    max_branch_width: int
    truncated: bool
    #: delivery schedule of the first offending execution, if any
    trace: Optional[str] = None


def _run_flood(
    adj: Dict[int, FrozenSet[int]],
    origin: int,
    radius: int,
    spec: FloodSpec,
    max_rounds: int,
) -> _FloodResult:
    """Execute ``spec`` from ``origin`` over every delivery interleaving.

    Depth-first over per-round branch points; each global execution ends
    when no message is in flight (recording its coverage) or when it
    exceeds ``max_rounds`` (a termination violation).
    """
    nodes = sorted(adj)
    initial_states: Dict[int, _NodeState] = {
        v: (frozenset(), frozenset()) for v in nodes
    }
    # Round 0: the origin broadcasts (origin, radius - 1), as the source
    # send sites do.  Coverage counts *receivers*, so the origin's own
    # emission does not mark it covered.
    first_inboxes: Dict[int, Tuple[_Msg, ...]] = {
        v: ((origin, radius - 1),) for v in adj[origin]
    }
    result = _FloodResult(
        terminated=True,
        coverages=set(),
        interleavings=0,
        max_branch_width=1,
        truncated=False,
    )
    executions = 0

    # stack entries: (round, states, inboxes, schedule-so-far)
    stack: List[
        Tuple[int, Dict[int, _NodeState], Dict[int, Tuple[_Msg, ...]], List[str]]
    ] = [(1, initial_states, first_inboxes, [])]
    while stack:
        round_no, states, inboxes, schedule = stack.pop()
        if not inboxes:
            executions += 1
            result.coverages.add(
                frozenset(v for v in nodes if states[v][0])
            )
            if executions >= _MAX_EXECUTIONS:
                result.truncated = True
                return result
            continue
        if round_no > max_rounds:
            result.terminated = False
            result.trace = " | ".join(schedule) or "<initial flood>"
            return result
        # Per-node outcome sets; nodes without mail keep their state.
        per_node: Dict[int, List[Tuple[_NodeState, Tuple[_Msg, ...]]]] = {}
        for v, inbox in sorted(inboxes.items()):
            outcomes = _node_step(states[v], inbox, spec)
            result.interleavings += len(set(permutations(inbox)))
            result.max_branch_width = max(
                result.max_branch_width, len(outcomes)
            )
            per_node[v] = sorted(outcomes)
        # Cartesian product of per-node outcomes = global branches.
        branches: List[Dict[int, Tuple[_NodeState, Tuple[_Msg, ...]]]] = [{}]
        for v, outcomes in per_node.items():
            branches = [
                {**b, v: outcome} for b in branches for outcome in outcomes
            ]
        for branch in branches:
            new_states = dict(states)
            new_inboxes: Dict[int, List[_Msg]] = {}
            for v, (state, outgoing) in branch.items():
                new_states[v] = state
                for msg in outgoing:
                    for w in sorted(adj[v]):
                        new_inboxes.setdefault(w, []).append(msg)
            step_desc = ",".join(
                f"{v}<-{list(inboxes[v])}" for v in sorted(inboxes)
            )
            stack.append(
                (
                    round_no + 1,
                    new_states,
                    {v: tuple(sorted(m)) for v, m in new_inboxes.items()},
                    schedule + [f"r{round_no}: {step_desc}"],
                )
            )
    return result


# ----------------------------------------------------------------------
# Gossip semantics (executes the TOPOLOGY exchange)
# ----------------------------------------------------------------------
def _run_gossip(
    adj: Dict[int, FrozenSet[int]], rounds: int
) -> Tuple[Dict[int, Dict[int, FrozenSet[int]]], bool, int]:
    """k rounds of first-writer-wins adjacency gossip.

    Returns ``(final views, converged, interleavings)`` where
    ``converged`` is False when any node's final view depends on its
    inbox order.  (With consistent rows — every copy of a node's row is
    identical — first-writer-wins is confluent; the checker verifies
    that rather than assuming it.)
    """
    views: Dict[int, Dict[int, FrozenSet[int]]] = {
        v: {v: adj[v]} for v in adj
    }
    converged = True
    interleavings = 0
    for __ in range(rounds):
        outgoing = {v: tuple(sorted(views[v].items())) for v in adj}
        for v in sorted(adj):
            inbox = tuple(outgoing[u] for u in sorted(adj[v]))
            outcomes: Set[Tuple[Tuple[int, FrozenSet[int]], ...]] = set()
            final: Optional[Dict[int, FrozenSet[int]]] = None
            # sorted so the representative `final` view is deterministic
            # even when outcomes diverge (the divergence is reported).
            for perm in sorted(set(permutations(inbox))):
                interleavings += 1
                view = dict(views[v])
                for rows in perm:
                    for node, nbrs in rows:
                        if node not in view:
                            view[node] = nbrs
                outcomes.add(tuple(sorted(view.items())))
                if final is None:
                    final = view
            if len(outcomes) > 1:
                converged = False
            assert final is not None
            views[v] = final
    return views, converged, interleavings


# ----------------------------------------------------------------------
# The checker
# ----------------------------------------------------------------------
def _radius_for(symbol: str, tau: int) -> int:
    k = math.ceil(tau / 2)
    return k if symbol == "k" else k + 1


def _fmt_graph(n: int, edges: Sequence[Edge]) -> str:
    return f"n={n} edges={sorted(edges)}"


def check_model(
    contract: ProtocolContract,
    taus: Sequence[int] = (3, 5),
    max_n: int = 6,
    tracer: Optional[Any] = None,
) -> ModelReport:
    """Model-check ``contract`` on the small-graph catalog.

    For every graph, every origin, and every tau: executes each
    TTL-bounded flood over all delivery interleavings, asserting
    termination (REPRO220) and exact radius-ball coverage (REPRO221);
    runs the gossip exchange asserting order-insensitive convergence to
    exactly the k-ball rows (REPRO222).  Counterexamples are emitted as
    ``verify.counterexample`` spans on ``tracer`` (ambient by default).
    """
    tracer = tracer if tracer is not None else current_tracer()
    report = ModelReport(taus=tuple(taus), max_n=max_n)
    catalog = graph_catalog(max_n)
    report.graphs_checked = len(catalog)
    findings: Dict[str, Finding] = {}

    def emit(
        rule: str,
        name: str,
        anchor_path: str,
        anchor_line: int,
        message: str,
        **attrs: object,
    ) -> None:
        finding = Finding(
            path=anchor_path,
            rule=rule,
            name=name,
            line=anchor_line,
            col=0,
            message=message,
        )
        # One finding per (rule, message) — the same defect shows up on
        # many catalog graphs; the span stream keeps every instance.
        findings.setdefault(finding.fingerprint(), finding)
        tracer.add_span("verify.counterexample", 0.0, rule=rule, **attrs)

    for tau in taus:
        k = math.ceil(tau / 2)
        for n, edges in catalog:
            adj = _adjacency(n, edges)
            graph_desc = _fmt_graph(n, edges)

            for kind, spec in sorted(contract.floods.items()):
                site = contract.send_site(kind)
                anchor_path = site.path if site else "<contract>"
                anchor_line = site.line if site else 1
                if spec.radius_symbol is None:
                    emit(
                        "REPRO221",
                        "flood-coverage",
                        anchor_path,
                        anchor_line,
                        f"{kind} flood: initial ttl "
                        f"`{spec.initial_ttl}` does not derive from a "
                        "known radius (k or m); coverage unverifiable",
                        kind=kind,
                        tau=tau,
                    )
                    continue
                radius = _radius_for(spec.radius_symbol, tau)
                for origin in sorted(adj):
                    report.flood_cases += 1
                    res = _run_flood(
                        adj, origin, radius, spec, max_rounds=radius + 2
                    )
                    report.interleavings_explored += res.interleavings
                    report.max_branch_width = max(
                        report.max_branch_width, res.max_branch_width
                    )
                    if res.truncated:
                        report.truncated_cases += 1
                    if not res.terminated:
                        emit(
                            "REPRO220",
                            "ttl-termination",
                            anchor_path,
                            anchor_line,
                            f"{kind} flood admits an execution that is "
                            f"still sending after {radius + 2} rounds "
                            "(ttl budget does not bound the flood)",
                            kind=kind,
                            tau=tau,
                            graph=graph_desc,
                            origin=origin,
                            schedule=res.trace or "",
                        )
                        continue
                    # Receivers = the radius ball.  The origin itself is
                    # covered when the budget allows even one relay
                    # (radius >= 2): a neighbour echoes the notice back,
                    # exactly as in the runtime where winners stay
                    # active through the flood rounds.
                    expected = frozenset(_ball(adj, origin, radius))
                    if radius < 2:
                        expected = frozenset(adj[origin])
                    for coverage in sorted(res.coverages, key=sorted):
                        if coverage != expected:
                            emit(
                                "REPRO221",
                                "flood-coverage",
                                anchor_path,
                                anchor_line,
                                f"{kind} flood coverage is not the "
                                f"{spec.radius_symbol}-ball: an "
                                "interleaving reaches "
                                "a different node set than the radius "
                                f"{radius} ball of the origin",
                                kind=kind,
                                tau=tau,
                                graph=graph_desc,
                                origin=origin,
                                got=sorted(coverage),
                                expected=sorted(expected),
                            )
                            break

            if contract.gossip_kinds:
                gossip_site = contract.send_site(contract.gossip_kinds[0])
                anchor_path = gossip_site.path if gossip_site else "<contract>"
                anchor_line = gossip_site.line if gossip_site else 1
                report.gossip_cases += 1
                views, converged, inter = _run_gossip(adj, rounds=k)
                report.interleavings_explored += inter
                if not converged:
                    emit(
                        "REPRO222",
                        "view-convergence",
                        anchor_path,
                        anchor_line,
                        "gossip views depend on inbox delivery order; "
                        "first-writer-wins merge is not confluent here",
                        tau=tau,
                        graph=graph_desc,
                    )
                for v in sorted(adj):
                    expected_keys = _ball(adj, v, k)
                    got_keys = set(views[v])
                    ok_keys = got_keys == expected_keys
                    ok_rows = all(
                        views[v][u] == adj[u] for u in got_keys & set(adj)
                    )
                    if not (ok_keys and ok_rows):
                        emit(
                            "REPRO222",
                            "view-convergence",
                            anchor_path,
                            anchor_line,
                            f"after k={k} gossip rounds a node's view is "
                            "not exactly its k-ball adjacency rows",
                            tau=tau,
                            graph=graph_desc,
                            node=v,
                            got=sorted(got_keys),
                            expected=sorted(expected_keys),
                        )
                        break

    report.findings = sorted(findings.values(), key=lambda f: f.sort_key)
    return report

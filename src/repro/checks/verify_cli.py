"""``repro-verify``: protocol verification front for the runtime.

Three passes, one verdict:

1. **Contract extraction** (:mod:`repro.checks.protocol`, REPRO20x) —
   derives the send/handle matrix from ``runtime/`` and checks payload
   schemas, ttl relays, drop accounting, and cross-module constants.
2. **Locality flow** (:mod:`repro.checks.locality`, REPRO21x) — proves
   per-node decision paths read only their own view and inbox; global
   reads survive only behind reasoned ``# repro: allow[...]`` comments.
3. **Bounded model checking** (:mod:`repro.checks.model`, REPRO22x) —
   executes the extracted contract over every delivery interleaving on
   small graphs, asserting TTL termination, radius-ball flood coverage,
   and gossip view convergence.

Examples::

    repro-verify                       # all three passes on src/
    repro-verify --json                # stable machine-readable report
    repro-verify --skip-model          # static passes only (fast)
    repro-verify --max-n 4 --tau 3     # smaller model-checking envelope
    repro-verify --list-rules

Exit status: 0 when no *new* findings (baselined ones are summarised but
do not fail), 1 otherwise.  The JSON report (``repro-verify/v1``)
contains the findings, the extracted send/handle matrix, and the model
checker's coverage statistics, each rendered deterministically.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.checks.engine import Baseline, Finding, LintEngine, render_text
from repro.checks.locality import LOCALITY_RULES, default_locality_rules
from repro.checks.model import MODEL_RULES, ModelReport, check_model
from repro.checks.protocol import (
    PROTOCOL_RULES,
    ProtocolContract,
    check_constants,
    extract_contract,
)
from repro.checks.runner import (
    add_front_args,
    parse_front,
    print_rule_rows,
    print_summary,
    split_baseline,
    write_baseline,
)

DEFAULT_BASELINE = "repro-verify.baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description=(
            "Protocol contract extraction, locality flow analysis, and "
            "bounded model checking for the distributed DCC runtime."
        ),
    )
    add_front_args(parser, DEFAULT_BASELINE, select=False, verb="verify")
    parser.add_argument(
        "--skip-model",
        action="store_true",
        help="skip the bounded model checker (static passes only)",
    )
    parser.add_argument(
        "--max-n",
        type=int,
        default=6,
        metavar="N",
        help="largest graph size the model checker enumerates (default: 6)",
    )
    parser.add_argument(
        "--tau",
        type=int,
        action="append",
        default=None,
        metavar="TAU",
        help="confine size(s) to model-check (default: 3 and 5; repeatable)",
    )
    return parser


def _all_rule_rows() -> List[tuple]:
    return list(PROTOCOL_RULES) + list(LOCALITY_RULES) + list(MODEL_RULES)


def run_verify(
    paths: List[Path],
    root: Path,
    taus: tuple,
    max_n: int,
    skip_model: bool,
) -> tuple:
    """The three passes; returns ``(findings, contract, model_report)``."""
    contract, findings = extract_contract(paths, root=root)
    findings = list(findings)
    findings.extend(check_constants(root))

    engine = LintEngine(list(default_locality_rules()), root=root)
    findings.extend(engine.lint(paths))

    model_report: Optional[ModelReport] = None
    if not skip_model:
        model_report = check_model(contract, taus=taus, max_n=max_n)
        findings.extend(model_report.findings)

    return sorted(findings, key=lambda f: f.sort_key), contract, model_report


def render_report(
    findings: List[Finding],
    contract: ProtocolContract,
    model_report: Optional[ModelReport],
) -> str:
    """The ``repro-verify/v1`` JSON document (sorted keys, stable)."""
    payload: Dict[str, object] = {
        "format": "repro-verify/v1",
        "count": len(findings),
        "findings": [f.as_dict() for f in findings],
        "contract": {
            "kinds": list(contract.kinds),
            "matrix": contract.matrix(),
            "payload_by_kind": dict(sorted(contract.payload_by_kind.items())),
            "gossip_kinds": list(contract.gossip_kinds),
            "floods": {
                kind: {
                    "initial_ttl": spec.initial_ttl,
                    "radius_symbol": spec.radius_symbol,
                    "decrements": spec.decrements,
                    "guarded": spec.guarded,
                    "dedup_by_origin": spec.dedup_by_origin,
                }
                for kind, spec in sorted(contract.floods.items())
            },
        },
        "model": model_report.as_dict() if model_report is not None else None,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print_rule_rows(_all_rule_rows())
        return 0
    front = parse_front(args)
    taus = tuple(args.tau) if args.tau else (3, 5)

    findings, contract, model_report = run_verify(
        front.paths,
        front.root,
        taus=taus,
        max_n=args.max_n,
        skip_model=args.skip_model,
    )

    if args.update_baseline:
        return write_baseline(findings, front.baseline_path)

    baseline = None if args.no_baseline else Baseline.load(front.baseline_path)
    fresh, parked = split_baseline(findings, baseline)

    if args.json:
        print(render_report(fresh, contract, model_report))
    else:
        if fresh:
            print(render_text(fresh))
        matrix = contract.matrix()
        kinds = ", ".join(
            f"{kind}({cell['sent']}s/{cell['handled']}h)"
            for kind, cell in sorted(matrix.items())
        )
        print(f"repro-verify: contract {kinds or '<empty>'}")
        if model_report is not None:
            print(
                "repro-verify: model checked "
                f"{model_report.graphs_checked} graphs, "
                f"{model_report.flood_cases} flood cases, "
                f"{model_report.interleavings_explored} interleavings"
            )
        print_summary("repro-verify", fresh, parked)
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())

"""``repro-verify``: protocol verification front for the runtime.

Three passes, one verdict:

1. **Contract extraction** (:mod:`repro.checks.protocol`, REPRO20x) —
   derives the send/handle matrix from ``runtime/`` and checks payload
   schemas, ttl relays, drop accounting, and cross-module constants.
2. **Locality flow** (:mod:`repro.checks.locality`, REPRO21x) — proves
   per-node decision paths read only their own view and inbox; global
   reads survive only behind reasoned ``# repro: allow[...]`` comments.
3. **Bounded model checking** (:mod:`repro.checks.model`, REPRO22x) —
   executes the extracted contract over every delivery interleaving on
   small graphs, asserting TTL termination, radius-ball flood coverage,
   and gossip view convergence.

Examples::

    repro-verify                       # all three passes on src/
    repro-verify --json                # stable machine-readable report
    repro-verify --skip-model          # static passes only (fast)
    repro-verify --max-n 4 --tau 3     # smaller model-checking envelope
    repro-verify --list-rules

Exit status: 0 when no *new* findings (baselined ones are summarised but
do not fail), 1 otherwise.  The JSON report (``repro-verify/v1``)
contains the findings, the extracted send/handle matrix, and the model
checker's coverage statistics, each rendered deterministically.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.checks.engine import (
    Baseline,
    Finding,
    LintEngine,
    render_text,
)
from repro.checks.locality import LOCALITY_RULES, default_locality_rules
from repro.checks.model import MODEL_RULES, ModelReport, check_model
from repro.checks.protocol import (
    PROTOCOL_RULES,
    ProtocolContract,
    check_constants,
    extract_contract,
)

DEFAULT_BASELINE = "repro-verify.baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description=(
            "Protocol contract extraction, locality flow analysis, and "
            "bounded model checking for the distributed DCC runtime."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to verify (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit stable JSON instead of text"
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=DEFAULT_BASELINE,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file: report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the rules and exit"
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="directory paths are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--skip-model",
        action="store_true",
        help="skip the bounded model checker (static passes only)",
    )
    parser.add_argument(
        "--max-n",
        type=int,
        default=6,
        metavar="N",
        help="largest graph size the model checker enumerates (default: 6)",
    )
    parser.add_argument(
        "--tau",
        type=int,
        action="append",
        default=None,
        metavar="TAU",
        help="confine size(s) to model-check (default: 3 and 5; repeatable)",
    )
    return parser


def _all_rule_rows() -> List[tuple]:
    return list(PROTOCOL_RULES) + list(LOCALITY_RULES) + list(MODEL_RULES)


def run_verify(
    paths: List[Path],
    root: Path,
    taus: tuple,
    max_n: int,
    skip_model: bool,
) -> tuple:
    """The three passes; returns ``(findings, contract, model_report)``."""
    contract, findings = extract_contract(paths, root=root)
    findings = list(findings)
    findings.extend(check_constants(root))

    engine = LintEngine(list(default_locality_rules()), root=root)
    findings.extend(engine.lint(paths))

    model_report: Optional[ModelReport] = None
    if not skip_model:
        model_report = check_model(contract, taus=taus, max_n=max_n)
        findings.extend(model_report.findings)

    return sorted(findings, key=lambda f: f.sort_key), contract, model_report


def render_report(
    findings: List[Finding],
    contract: ProtocolContract,
    model_report: Optional[ModelReport],
) -> str:
    """The ``repro-verify/v1`` JSON document (sorted keys, stable)."""
    payload: Dict[str, object] = {
        "format": "repro-verify/v1",
        "count": len(findings),
        "findings": [f.as_dict() for f in findings],
        "contract": {
            "kinds": list(contract.kinds),
            "matrix": contract.matrix(),
            "payload_by_kind": dict(sorted(contract.payload_by_kind.items())),
            "gossip_kinds": list(contract.gossip_kinds),
            "floods": {
                kind: {
                    "initial_ttl": spec.initial_ttl,
                    "radius_symbol": spec.radius_symbol,
                    "decrements": spec.decrements,
                    "guarded": spec.guarded,
                    "dedup_by_origin": spec.dedup_by_origin,
                }
                for kind, spec in sorted(contract.floods.items())
            },
        },
        "model": model_report.as_dict() if model_report is not None else None,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, name, summary in _all_rule_rows():
            print(f"{rule_id}  {name:24s} {summary}")
        return 0
    root = Path(args.root).resolve() if args.root else Path.cwd()
    paths = [Path(p) for p in args.paths]
    taus = tuple(args.tau) if args.tau else (3, 5)
    baseline_path = (
        Path(args.baseline)
        if Path(args.baseline).is_absolute()
        else root / args.baseline
    )

    findings, contract, model_report = run_verify(
        paths, root, taus=taus, max_n=args.max_n, skip_model=args.skip_model
    )

    if args.update_baseline:
        baseline = Baseline(f.fingerprint() for f in findings)
        baseline.save(baseline_path)
        print(f"baseline: {len(baseline)} findings -> {baseline_path}")
        return 0

    baseline = None if args.no_baseline else Baseline.load(baseline_path)
    if baseline is None:
        fresh, parked = findings, []
    else:
        fresh = [f for f in findings if f not in baseline]
        parked = [f for f in findings if f in baseline]

    if args.json:
        print(render_report(fresh, contract, model_report))
    else:
        if fresh:
            print(render_text(fresh))
        matrix = contract.matrix()
        kinds = ", ".join(
            f"{kind}({cell['sent']}s/{cell['handled']}h)"
            for kind, cell in sorted(matrix.items())
        )
        print(f"repro-verify: contract {kinds or '<empty>'}")
        if model_report is not None:
            print(
                "repro-verify: model checked "
                f"{model_report.graphs_checked} graphs, "
                f"{model_report.flood_cases} flood cases, "
                f"{model_report.interleavings_explored} interleavings"
            )
        summary = f"repro-verify: {len(fresh)} finding(s)"
        if parked:
            summary += f" ({len(parked)} baselined)"
        print(summary)
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())

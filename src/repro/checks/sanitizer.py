"""Runtime shadow-oracle sanitizer for live runs.

Enabled via ``REPRO_SANITIZE=1`` (any truthy value; ``warn`` records
without raising) or programmatically with :func:`enable_sanitizer` —
the ``repro-coverage --sanitize`` flag does the latter and also exports
the env var so parallel worker processes sanitize too.  When active:

* every **fresh CSR-kernel verdict** the topology engine computes is
  recomputed on the dict oracle (pure-Python BFS over the adjacency
  sets, :class:`~repro.network.graph.SubgraphView`,
  :class:`~repro.cycles.horton.ShortCycleSpan` with ``use_csr=False``)
  and compared;
* every **verdict-cache hit** is compared against a fresh recompute
  (stride-sampled via ``REPRO_SANITIZE_STRIDE``, default: every hit);
* every **kernel k-ball** (and MIS ``ball_intersects`` probe) is
  compared against the dict BFS;
* every **parallel metrics merge** of three or more worker payloads is
  re-associated — ``merge(a, merge(b, c))`` against
  ``merge(merge(a, b), c)`` — and the resulting registries compared.

Violations are reported through the ambient obs tracer (a zero-width
``sanitizer.violation`` span) and metrics registry
(``sanitizer.violations``), and raise :class:`SanitizerError` unless
the mode is ``warn``.  All checks are read-only recomputations: a
sanitized run is slower but produces byte-identical schedules, figures
and traces (modulo the sanitizer's own spans).

This module sits *below* :mod:`repro.topology` in the import order (the
engine imports it), so it must never import the topology package — the
oracle is rebuilt here from the network/cycles layers directly.
"""

from __future__ import annotations

import math
import os
from collections import deque
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro import knobs
from repro.cycles.horton import ShortCycleSpan
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import current_metrics, current_tracer


class SanitizerError(AssertionError):
    """A shadow-oracle check failed on a live run."""


class Violation:
    """One recorded divergence between the fast path and its oracle."""

    __slots__ = ("kind", "detail")

    def __init__(self, kind: str, detail: Dict[str, Any]) -> None:
        self.kind = kind
        self.detail = detail

    def __repr__(self) -> str:
        pairs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
        return f"sanitizer violation [{self.kind}] {pairs}"


# ----------------------------------------------------------------------
# Dict oracles (deliberately independent of the CSR kernel)
# ----------------------------------------------------------------------
def _dict_bfs(graph: Any, source: int, cutoff: Optional[int]) -> Dict[int, int]:
    """Truncated BFS over the raw adjacency sets — no CSR involvement."""
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        d = dist[u]
        if cutoff is not None and d >= cutoff:
            continue
        for w in sorted(graph.neighbors(u)):
            if w not in dist:
                dist[w] = d + 1
                frontier.append(w)
    return dist


def oracle_ball(graph: Any, v: int, radius: int) -> FrozenSet[int]:
    """The dict-oracle k-ball (includes ``v``)."""
    return frozenset(_dict_bfs(graph, v, radius))


def oracle_deletable(graph: Any, v: int, tau: int) -> bool:
    """Definition 5 on the dict oracle: punctured k-ball, connectivity,
    short-cycle span — every step forced onto the non-kernel path."""
    k = math.ceil(tau / 2)
    neighborhood = frozenset(_dict_bfs(graph, v, k)) - {v}
    if not neighborhood:
        return True
    view = graph.subgraph_view(neighborhood)
    if not view.is_connected():
        return False
    return ShortCycleSpan(view, tau, use_csr=False).spans_cycle_space()


def check_merge_associativity(
    payloads: Sequence[Sequence[Any]],
) -> Optional[str]:
    """Re-associate a metrics merge; ``None`` if both groupings agree.

    ``payloads`` are :meth:`MetricsRegistry.to_payload` snapshots in
    submission order.  Folding left ``((a + b) + c)`` and folding right
    ``(a + (b + c))`` must produce identical registries — counters and
    histogram concatenations are associative, gauges resolve
    last-write-wins under either grouping because submission order is
    preserved.  Returns a description of the first differing metric
    otherwise.
    """
    registries: List[MetricsRegistry] = []
    for rows in payloads:
        reg = MetricsRegistry()
        reg.merge_payload(list(rows))
        registries.append(reg)
    if len(registries) < 2:
        return None
    left = MetricsRegistry()
    for reg in registries:
        left.merge(reg)
    right = MetricsRegistry()
    for reg in reversed(registries):
        flipped = MetricsRegistry()
        flipped.merge(reg)
        flipped.merge(right)
        right = flipped
    left_dict, right_dict = left.as_dict(), right.as_dict()
    if left_dict == right_dict:
        return None
    names = sorted(set(left_dict) | set(right_dict))
    for name in names:
        if left_dict.get(name) != right_dict.get(name):
            return (
                f"metric {name!r}: left-fold {left_dict.get(name)!r} != "
                f"right-fold {right_dict.get(name)!r}"
            )
    return "registries differ"  # pragma: no cover - defensive


# ----------------------------------------------------------------------
# The sanitizer itself
# ----------------------------------------------------------------------
class Sanitizer:
    """Shadow-checks live computations against the dict oracles.

    ``mode`` is ``"raise"`` (default: first violation raises
    :class:`SanitizerError`) or ``"warn"`` (record and continue);
    ``stride`` samples the verdict-cache-hit recompute (1 = every hit).
    Checks and violations are counted per kind in :attr:`checks` /
    :attr:`violations`.
    """

    def __init__(self, mode: str = "raise", stride: int = 1) -> None:
        if mode not in ("raise", "warn"):
            raise ValueError(f"unknown sanitizer mode {mode!r}")
        self.mode = mode
        self.stride = max(1, int(stride))
        self.checks: Dict[str, int] = {}
        self.violations: List[Violation] = []
        self._hit_tick = 0
        self._batch_tick = 0

    # -- accounting ----------------------------------------------------
    def _count(self, kind: str) -> None:
        self.checks[kind] = self.checks.get(kind, 0) + 1
        metrics = current_metrics()
        if metrics is not None:
            metrics.inc(f"sanitizer.checks.{kind}")

    def _violate(self, kind: str, **detail: Any) -> None:
        violation = Violation(kind, detail)
        self.violations.append(violation)
        tracer = current_tracer()
        tracer.add_span("sanitizer.violation", 0.0, kind=kind, **detail)
        metrics = current_metrics()
        if metrics is not None:
            metrics.inc("sanitizer.violations")
        if self.mode == "raise":
            raise SanitizerError(repr(violation))

    @property
    def total_checks(self) -> int:
        return sum(self.checks.values())

    def summary(self) -> str:
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.checks.items())
        )
        return (
            f"sanitizer: {self.total_checks} checks "
            f"({kinds or 'none'}), {len(self.violations)} violations"
        )

    # -- engine hooks --------------------------------------------------
    def check_fresh_verdict(self, graph: Any, v: int, tau: int, verdict: bool) -> None:
        """A fresh kernel verdict against the full dict-oracle recompute."""
        self._count("fresh_verdict")
        expected = oracle_deletable(graph, v, tau)
        if expected != verdict:
            self._violate(
                "kernel-verdict-divergence",
                vertex=v,
                tau=tau,
                kernel=verdict,
                oracle=expected,
            )

    def check_cached_verdict(self, graph: Any, v: int, tau: int, verdict: bool) -> None:
        """A verdict-cache hit against a fresh recompute (stride-sampled)."""
        self._hit_tick += 1
        if self._hit_tick % self.stride:
            return
        self._count("cached_verdict")
        expected = oracle_deletable(graph, v, tau)
        if expected != verdict:
            self._violate(
                "stale-verdict-cache",
                vertex=v,
                tau=tau,
                cached=verdict,
                oracle=expected,
            )

    def check_batch_verdict(self, graph: Any, v: int, tau: int, verdict: bool) -> None:
        """A batched-kernel verdict against the dict oracle (stride-sampled).

        The batch path answers hundreds of candidates per call, so unlike
        :meth:`check_fresh_verdict` (every fresh scalar verdict) this hook
        samples with the same stride as the cache-hit check — the oracle
        still covers every code path of the packed pipeline over a run,
        without multiplying the batch win away.
        """
        self._batch_tick += 1
        if self._batch_tick % self.stride:
            return
        self._count("batch_verdict")
        expected = oracle_deletable(graph, v, tau)
        if expected != verdict:
            self._violate(
                "batch-verdict-divergence",
                vertex=v,
                tau=tau,
                batch=verdict,
                oracle=expected,
            )

    def check_ball(
        self, graph: Any, v: int, radius: int, ball: Iterable[int]
    ) -> None:
        """A kernel k-ball against the dict BFS."""
        self._count("ball")
        expected = oracle_ball(graph, v, radius)
        got = frozenset(ball)
        if expected != got:
            self._violate(
                "kernel-ball-divergence",
                vertex=v,
                radius=radius,
                missing=sorted(expected - got)[:5],
                extra=sorted(got - expected)[:5],
            )

    def check_ball_intersects(
        self, graph: Any, v: int, radius: int, blockers: Set[int], hit: bool
    ) -> None:
        """The MIS separation probe against the dict-oracle ball."""
        self._count("ball_intersects")
        expected = not frozenset(blockers).isdisjoint(oracle_ball(graph, v, radius))
        if expected != hit:
            self._violate(
                "kernel-intersect-divergence",
                vertex=v,
                radius=radius,
                kernel=hit,
                oracle=expected,
            )

    def check_merge(self, payloads: Sequence[Sequence[Any]]) -> None:
        """Associativity of a live parallel metrics merge (>= 3 parts)."""
        if len(payloads) < 3:
            return
        self._count("merge_associativity")
        mismatch = check_merge_associativity(payloads)
        if mismatch is not None:
            self._violate(
                "merge-associativity", parts=len(payloads), mismatch=mismatch
            )

    def assert_clean(self) -> None:
        """Raise (even in ``warn`` mode) if any violation was recorded."""
        if self.violations:
            raise SanitizerError(
                f"{len(self.violations)} sanitizer violations; first: "
                f"{self.violations[0]!r}"
            )


# ----------------------------------------------------------------------
# Process-global activation (env-driven so worker processes inherit it)
# ----------------------------------------------------------------------
_ACTIVE: Optional[Sanitizer] = None


def current_sanitizer() -> Optional[Sanitizer]:
    """The active sanitizer, or ``None`` — the hot-path guard."""
    return _ACTIVE


def enable_sanitizer(
    mode: Optional[str] = None, stride: Optional[int] = None
) -> Sanitizer:
    """Install a fresh sanitizer and export ``REPRO_SANITIZE``.

    Exporting the env var is what lets :class:`ProcessPoolExecutor`
    workers — which import this module fresh — activate their own
    sanitizers; a worker violation in ``raise`` mode propagates to the
    caller through the future's result.
    """
    global _ACTIVE
    if mode is None:
        mode = "raise"
    if stride is None:
        stride = _env_stride()
    _ACTIVE = Sanitizer(mode=mode, stride=stride)
    os.environ["REPRO_SANITIZE"] = "warn" if mode == "warn" else "1"
    return _ACTIVE


def disable_sanitizer() -> None:
    """Deactivate and clear the env var (workers spawned later run clean)."""
    global _ACTIVE
    _ACTIVE = None
    os.environ.pop("REPRO_SANITIZE", None)


def _env_stride() -> int:
    return knobs.get_int("REPRO_SANITIZE_STRIDE")


def _init_from_env() -> None:
    global _ACTIVE
    value = os.environ.get("REPRO_SANITIZE", "").strip().lower()
    if value and value not in ("0", "false", "off", "no"):
        mode = "warn" if value == "warn" else "raise"
        _ACTIVE = Sanitizer(mode=mode, stride=_env_stride())


_init_from_env()

"""``repro-bounds``: symbolic locality/complexity certifier CLI.

Two modes, one contract:

* **Static mode** (default) — run the REPRO4xx passes
  (:mod:`repro.checks.bounds`) over the tree: every BFS/ball/TTL/halo
  radius proven as a symbolic expression over ``(tau, k, m)``, the
  packed-kernel capacity constants re-derived, and the per-round
  message/halo envelopes emitted.  ``--manifest PATH`` writes the proved
  bounds as a ``repro-bounds-manifest/v1`` document.
* **Cross-check mode** (``--cross-check``) — run a small sharded +
  distributed smoke and assert every measured meter (halo rows/bytes,
  per-kind message counts, max BFS depth) stays inside the manifest's
  static envelope (:mod:`repro.obs.envelope`), printing the margin
  table.  ``--margins-out PATH`` writes the measured margins for the CI
  artifact.

Examples::

    repro-bounds src/
    repro-bounds src/ --json
    repro-bounds src/ --manifest bounds-manifest.json
    repro-bounds --cross-check --manifest-in bounds-manifest.json \\
        --margins-out bounds-margins.json
    repro-bounds --list-rules

Exit status: 0 when no *new* findings (static) or every meter inside
its envelope (cross-check), 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.checks.bounds import (
    BOUNDS_REPORT_SCHEMA,
    BOUNDS_RULES,
    BoundsManifest,
    run_bounds,
)
from repro.checks.engine import Baseline, Finding, render_text
from repro.checks.runner import (
    add_front_args,
    parse_front,
    print_rule_rows,
    print_summary,
    split_baseline,
    write_baseline,
)

DEFAULT_BASELINE = "repro-bounds.baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bounds",
        description=(
            "Symbolic radius/capacity certifier and runtime envelope "
            "cross-check for the repro codebase."
        ),
    )
    add_front_args(parser, DEFAULT_BASELINE, select=False, verb="certify")
    parser.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="write the proved-bounds manifest JSON to PATH (static mode)",
    )
    cross = parser.add_argument_group(
        "cross-check", "runtime envelope verification (--cross-check)"
    )
    cross.add_argument(
        "--cross-check",
        action="store_true",
        help="run the sharded/distributed smoke and check the envelopes",
    )
    cross.add_argument(
        "--manifest-in",
        metavar="PATH",
        default=None,
        help="bounds manifest to check against (default: derive statically)",
    )
    cross.add_argument(
        "--margins-out",
        metavar="PATH",
        default=None,
        help="write the measured-margin report JSON to PATH",
    )
    cross.add_argument(
        "--nodes", type=int, default=40, help="smoke deployment size (default: 40)"
    )
    cross.add_argument(
        "--degree",
        type=float,
        default=8.0,
        help="smoke average degree (default: 8)",
    )
    cross.add_argument(
        "--seed", type=int, default=0, help="smoke deployment seed (default: 0)"
    )
    cross.add_argument(
        "--shards", type=int, default=2, help="smoke shard count (default: 2)"
    )
    cross.add_argument(
        "--tau", type=int, default=5, help="smoke confine size (default: 5)"
    )
    return parser


def render_report(
    findings: List[Finding], manifest: BoundsManifest
) -> str:
    """The ``repro-bounds/v1`` JSON document (sorted keys, stable)."""
    payload: Dict[str, object] = {
        "format": BOUNDS_REPORT_SCHEMA,
        "count": len(findings),
        "findings": [f.as_dict() for f in findings],
        "manifest": manifest.as_dict(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def run_cross_check(args: argparse.Namespace, root: Path) -> int:
    """The runtime half: smoke runs measured against the static manifest.

    Heavy imports are deferred so the static mode stays import-light.
    """
    from repro.analysis.experiments import _prepare_network
    from repro.obs.envelope import (
        check_envelope,
        max_bfs_depth_from_tracer,
        measured_from_runtime_stats,
        measured_from_shard_stats,
        shape_params_from_graph,
    )
    from repro.obs.tracer import Tracer

    if args.manifest_in:
        manifest_path = (
            Path(args.manifest_in)
            if Path(args.manifest_in).is_absolute()
            else root / args.manifest_in
        )
        manifest = json.loads(manifest_path.read_text())
    else:
        _, bounds_manifest = run_bounds([Path(p) for p in args.paths], root)
        manifest = bounds_manifest.as_dict()

    network, _, protected = _prepare_network(args.nodes, args.degree, args.seed)
    params: Dict[str, int] = shape_params_from_graph(network.graph, args.tau)
    measured: Dict[str, int] = {}

    # Sharded smoke: halo-traffic meters plus the observed BFS depths.
    from repro.core.scheduler import dcc_schedule

    tracer = Tracer()
    result = dcc_schedule(
        network.graph,
        protected,
        args.tau,
        seed=args.seed,
        shards=args.shards,
        workers=1,
        tracer=tracer,
    )
    stats = result.shard_stats
    if stats is not None:
        measured.update(measured_from_shard_stats(stats))
        params["shards"] = stats.shard_count
        params["halo_members"] = sum(stats.halo_sizes)
        params["subrounds"] = max(stats.subrounds_per_round, default=0)
    params["rounds"] = result.rounds
    depth = max_bfs_depth_from_tracer(tracer)
    if depth is not None:
        measured["bfs.max_depth"] = depth

    # Distributed smoke: the per-kind message counters.
    from repro.runtime.protocol import distributed_dcc_schedule

    dist = distributed_dcc_schedule(
        network.graph, protected, args.tau, seed=args.seed
    )
    measured.update(measured_from_runtime_stats(dist.stats))
    params["deletions"] = len(dist.removed)
    # The flood envelopes bound each protocol iteration by a round of
    # sends; the distributed run's iteration count is the tighter cap.
    params["rounds"] = max(params["rounds"], dist.iterations)

    report = check_envelope(manifest, measured, params)
    print(report.format_diff())
    if args.margins_out:
        margins_path = (
            Path(args.margins_out)
            if Path(args.margins_out).is_absolute()
            else root / args.margins_out
        )
        margins_path.write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"margins -> {margins_path}")
    summary = "ok" if report.ok else f"{len(report.violations)} violation(s)"
    print(f"repro-bounds: cross-check {summary} ({len(report.rows)} meter(s))")
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print_rule_rows(BOUNDS_RULES)
        return 0
    front = parse_front(args)
    if args.cross_check:
        return run_cross_check(args, front.root)

    findings, manifest = run_bounds(front.paths, front.root)

    if args.manifest:
        manifest_path = (
            Path(args.manifest)
            if Path(args.manifest).is_absolute()
            else front.root / args.manifest
        )
        manifest_path.write_text(
            json.dumps(manifest.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"manifest -> {manifest_path}")

    if args.update_baseline:
        return write_baseline(findings, front.baseline_path)

    baseline = None if args.no_baseline else Baseline.load(front.baseline_path)
    fresh, parked = split_baseline(findings, baseline)

    if args.json:
        print(render_report(fresh, manifest))
    else:
        if fresh:
            print(render_text(fresh))
        sites = manifest.radius_sites
        proven = sum(1 for s in sites if s.status == "proven")
        delegated = sum(1 for s in sites if s.status == "delegated")
        allowed = sum(1 for s in sites if s.status == "allowed")
        print(
            f"repro-bounds: {len(sites)} radius site(s) — "
            f"{proven} proven, {delegated} delegated, {allowed} allowed; "
            f"{len(manifest.envelopes)} envelope(s)"
        )
        print_summary("repro-bounds", fresh, parked)
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())

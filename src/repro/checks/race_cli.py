"""``repro-race``: ownership & lifecycle verification for the parallel layer.

Examples::

    repro-race src/
    repro-race src/repro/parallel --json
    repro-race src/ --update-baseline   # park current findings
    repro-race --list-rules

Runs the REPRO3xx concurrency family (:mod:`repro.checks.concurrency`)
— shm segment lifecycle, pool-boundary channel audit, fork-inheritance
safety, the knob registry — through the same engine as ``repro-lint``:
inline ``# repro: allow[RULE]`` suppressions, a committed baseline
(``repro-race.baseline.json``) and byte-stable text/JSON reports.

Exit status: 0 when no *new* findings (baselined ones are reported as a
summary line but do not fail), 1 otherwise.

All shared plumbing (baseline handling, ``--select``, exit codes) lives
in :mod:`repro.checks.runner`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.checks.concurrency import concurrency_rules
from repro.checks.runner import add_front_args, run_engine_front

DEFAULT_BASELINE = "repro-race.baseline.json"

REPORT_FORMAT = "repro-race/v1"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-race",
        description=(
            "Ownership and lifecycle verifier for the process-parallel "
            "layer: shm state machine, pool-boundary channels, "
            "fork-inherited state, knob registry."
        ),
    )
    return add_front_args(parser, DEFAULT_BASELINE)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return run_engine_front(
        "repro-race",
        list(concurrency_rules()),
        args,
        report_format=REPORT_FORMAT,
    )


if __name__ == "__main__":
    sys.exit(main())

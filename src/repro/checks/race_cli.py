"""``repro-race``: ownership & lifecycle verification for the parallel layer.

Examples::

    repro-race src/
    repro-race src/repro/parallel --json
    repro-race src/ --update-baseline   # park current findings
    repro-race --list-rules

Runs the REPRO3xx concurrency family (:mod:`repro.checks.concurrency`)
— shm segment lifecycle, pool-boundary channel audit, fork-inheritance
safety, the knob registry — through the same engine as ``repro-lint``:
inline ``# repro: allow[RULE]`` suppressions, a committed baseline
(``repro-race.baseline.json``) and byte-stable text/JSON reports.

Exit status: 0 when no *new* findings (baselined ones are reported as a
summary line but do not fail), 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.checks.concurrency import concurrency_rules
from repro.checks.engine import Baseline, lint_paths, render_json, render_text

DEFAULT_BASELINE = "repro-race.baseline.json"

REPORT_FORMAT = "repro-race/v1"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-race",
        description=(
            "Ownership and lifecycle verifier for the process-parallel "
            "layer: shm state machine, pool-boundary channels, "
            "fork-inherited state, knob registry."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit stable JSON instead of text"
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=DEFAULT_BASELINE,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file: report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids/names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the rules and exit"
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="directory paths are reported relative to (default: cwd)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rules = list(concurrency_rules())
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.name:24s} {rule.summary}")
        return 0
    if args.select:
        wanted = {token.strip() for token in args.select.split(",") if token.strip()}
        rules = [r for r in rules if r.rule_id in wanted or r.name in wanted]
        unknown = wanted - {r.rule_id for r in rules} - {r.name for r in rules}
        if unknown:
            print(f"unknown rules: {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
    root = Path(args.root).resolve() if args.root else Path.cwd()
    paths = [Path(p) for p in args.paths]
    baseline_path = root / args.baseline if not Path(args.baseline).is_absolute() \
        else Path(args.baseline)

    if args.update_baseline:
        findings, _ = lint_paths(paths, rules, baseline=None, root=root)
        baseline = Baseline(f.fingerprint() for f in findings)
        baseline.save(baseline_path)
        print(f"baseline: {len(baseline)} findings -> {baseline_path}")
        return 0

    baseline = None if args.no_baseline else Baseline.load(baseline_path)
    fresh, parked = lint_paths(paths, rules, baseline=baseline, root=root)
    if args.json:
        print(render_json(fresh, format=REPORT_FORMAT))
    else:
        if fresh:
            print(render_text(fresh))
        summary = f"repro-race: {len(fresh)} finding(s)"
        if parked:
            summary += f" ({len(parked)} baselined)"
        print(summary)
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())

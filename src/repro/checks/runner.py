"""Shared CLI plumbing for the check fronts, plus ``repro-check``.

Four fronts share one reporting contract — positional paths, ``--json``,
a committed baseline with ``--no-baseline``/``--update-baseline``,
``--select``/``--list-rules``, ``--root`` — and before this module each
CLI carried its own copy of that boilerplate.  The helpers here own it
once:

* :func:`add_front_args` / :func:`parse_front` — the common argument
  set and its resolution (root, paths, baseline path).
* :func:`select_rules`, :func:`print_rule_rows` — ``--select`` and
  ``--list-rules`` handling.
* :func:`run_engine_front` — the complete main loop for a front whose
  findings come from :func:`repro.checks.engine.lint_paths`
  (``repro-lint``, ``repro-race``).
* :func:`split_baseline`, :func:`write_baseline`,
  :func:`print_summary` — the pieces fronts with bespoke pipelines
  (``repro-verify``, ``repro-bounds``) compose themselves.
* :func:`main` — the ``repro-check`` umbrella: every front in sequence,
  one exit code.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.checks.engine import (
    Baseline,
    Finding,
    Rule,
    lint_paths,
    render_json,
    render_text,
)


def add_front_args(
    parser: argparse.ArgumentParser,
    default_baseline: str,
    *,
    select: bool = True,
    verb: str = "check",
) -> argparse.ArgumentParser:
    """The argument set every check front shares."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help=f"files or directories to {verb} (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit stable JSON instead of text"
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=default_baseline,
        help=f"baseline file of accepted findings (default: {default_baseline})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file: report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    if select:
        parser.add_argument(
            "--select",
            metavar="RULES",
            default=None,
            help="comma-separated rule ids/names to run (default: all)",
        )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the rules and exit"
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="directory paths are reported relative to (default: cwd)",
    )
    return parser


@dataclass
class FrontPaths:
    """Resolved common arguments."""

    root: Path
    paths: List[Path]
    baseline_path: Path


def parse_front(args: argparse.Namespace) -> FrontPaths:
    root = Path(args.root).resolve() if args.root else Path.cwd()
    paths = [Path(p) for p in args.paths]
    baseline_path = (
        Path(args.baseline)
        if Path(args.baseline).is_absolute()
        else root / args.baseline
    )
    return FrontPaths(root=root, paths=paths, baseline_path=baseline_path)


def select_rules(
    rules: Sequence[Rule], select: Optional[str]
) -> Tuple[List[Rule], Optional[str]]:
    """Apply ``--select``; returns ``(rules, error message or None)``."""
    if not select:
        return list(rules), None
    wanted = {token.strip() for token in select.split(",") if token.strip()}
    chosen = [r for r in rules if r.rule_id in wanted or r.name in wanted]
    unknown = wanted - {r.rule_id for r in chosen} - {r.name for r in chosen}
    if unknown:
        return chosen, f"unknown rules: {', '.join(sorted(unknown))}"
    return chosen, None


def print_rule_rows(rows: Iterable[Tuple[str, str, str]]) -> None:
    for rule_id, name, summary in rows:
        print(f"{rule_id}  {name:24s} {summary}")


def split_baseline(
    findings: Sequence[Finding], baseline: Optional[Baseline]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition into (fresh, parked-by-baseline)."""
    if baseline is None:
        return list(findings), []
    fresh = [f for f in findings if f not in baseline]
    parked = [f for f in findings if f in baseline]
    return fresh, parked


def write_baseline(findings: Sequence[Finding], path: Path) -> int:
    baseline = Baseline(f.fingerprint() for f in findings)
    baseline.save(path)
    print(f"baseline: {len(baseline)} findings -> {path}")
    return 0


def print_summary(
    prog: str, fresh: Sequence[Finding], parked: Sequence[Finding]
) -> None:
    summary = f"{prog}: {len(fresh)} finding(s)"
    if parked:
        summary += f" ({len(parked)} baselined)"
    print(summary)


def run_engine_front(
    prog: str,
    rules: Sequence[Rule],
    args: argparse.Namespace,
    report_format: Optional[str] = None,
) -> int:
    """The complete main loop for an engine-rule front (lint/race)."""
    if args.list_rules:
        print_rule_rows((r.rule_id, r.name, r.summary) for r in rules)
        return 0
    chosen, error = select_rules(rules, getattr(args, "select", None))
    if error:
        print(error, file=sys.stderr)
        return 2
    front = parse_front(args)

    if args.update_baseline:
        findings, _ = lint_paths(front.paths, chosen, baseline=None, root=front.root)
        return write_baseline(findings, front.baseline_path)

    baseline = None if args.no_baseline else Baseline.load(front.baseline_path)
    fresh, parked = lint_paths(
        front.paths, chosen, baseline=baseline, root=front.root
    )
    if args.json:
        if report_format is None:
            print(render_json(fresh))
        else:
            print(render_json(fresh, format=report_format))
    else:
        if fresh:
            print(render_text(fresh))
        print_summary(prog, fresh, parked)
    return 1 if fresh else 0


# ----------------------------------------------------------------------
# repro-check: the umbrella entry point
# ----------------------------------------------------------------------
def _front_table() -> List[Tuple[str, Callable[[Optional[List[str]]], int]]]:
    # Imported lazily so `repro-check --help` stays instant and a broken
    # front doesn't take the others down at import time.
    from repro.checks.bounds_cli import main as bounds_main
    from repro.checks.cli import main as lint_main
    from repro.checks.race_cli import main as race_main
    from repro.checks.verify_cli import main as verify_main

    return [
        ("repro-lint", lint_main),
        ("repro-race", race_main),
        ("repro-verify", verify_main),
        ("repro-bounds", bounds_main),
    ]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description=(
            "Run every static check front (repro-lint, repro-race, "
            "repro-verify, repro-bounds) with committed baselines and "
            "one combined exit code."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="directory paths are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--fronts",
        metavar="NAMES",
        default=None,
        help=(
            "comma-separated subset of fronts to run "
            "(lint, race, verify, bounds; default: all)"
        ),
    )
    parser.add_argument(
        "--skip-model",
        action="store_true",
        help="pass --skip-model to repro-verify (static passes only)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    wanted: Optional[set] = None
    if args.fronts:
        wanted = {
            token.strip().removeprefix("repro-")
            for token in args.fronts.split(",")
            if token.strip()
        }
        known = {"lint", "race", "verify", "bounds"}
        unknown = wanted - known
        if unknown:
            print(
                f"unknown fronts: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
    worst = 0
    for prog, front_main in _front_table():
        name = prog.removeprefix("repro-")
        if wanted is not None and name not in wanted:
            continue
        front_argv: List[str] = list(args.paths)
        if args.root:
            front_argv += ["--root", args.root]
        if prog == "repro-verify" and args.skip_model:
            front_argv.append("--skip-model")
        print(f"== {prog} ==")
        code = front_main(front_argv)
        worst = max(worst, code)
    return worst


if __name__ == "__main__":
    sys.exit(main())

"""Protocol contract extraction for the distributed DCC runtime (REPRO20x).

The paper's distributed protocol is held together by *message
invariants* — every :class:`~repro.runtime.messages.MessageKind` that is
sent must be handled, payload field accesses must match the frozen
dataclass that carries them, every relay must decrement ``ttl`` behind a
``ttl > 0`` guard, and the radii the floods are budgeted with
(``k = deletion_radius(tau)``, ``m = k + 1``) must agree across modules.
None of that is visible to a per-file linter, so this pass parses the
whole ``runtime/`` package at once, derives the send/handle matrix, and
checks it:

========  =====================  ==========================================
id        name                   catches
========  =====================  ==========================================
REPRO201  sent-unhandled         a kind sent somewhere but handled nowhere
REPRO202  handled-unsent         a handler (or enum member) for a kind
                                 that is never sent
REPRO203  payload-field          ``payload.x`` where the kind's dataclass
                                 has no field ``x``; payload constructors
                                 with unknown/missing fields
REPRO204  ttl-relay              a relay that does not provably send
                                 ``ttl - 1`` behind a ``ttl > 0`` guard
REPRO205  silent-drop            an inbox loop that skips kinds without
                                 routing them through ``record_drop``
REPRO206  constant-consistency   k/m derivation drift across ``core/vpt``,
                                 ``core/scheduler``, ``runtime/protocol``,
                                 ``runtime/mis`` and ``topology/engine``
========  =====================  ==========================================

The same pass produces a :class:`ProtocolContract` — the machine-readable
send/handle matrix plus per-kind flood parameters — which is what the
bounded model checker (:mod:`repro.checks.model`) executes.  Findings
honour the ``# repro: allow[rule]`` suppressions and baseline of
:mod:`repro.checks.engine`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.checks.engine import Finding, apply_suppressions

#: (rule id, rule name, summary) for every check this module performs.
PROTOCOL_RULES: Tuple[Tuple[str, str, str], ...] = (
    ("REPRO201", "sent-unhandled", "message kind sent but handled nowhere"),
    ("REPRO202", "handled-unsent", "handler or enum member for a kind never sent"),
    ("REPRO203", "payload-field", "payload access/constructor disagrees with the dataclass"),
    ("REPRO204", "ttl-relay", "relay without a proven ttl decrement behind a ttl > 0 guard"),
    ("REPRO205", "silent-drop", "inbox loop skips kinds without record_drop accounting"),
    ("REPRO206", "constant-consistency", "k/m radius derivation drifts across modules"),
)

_ENUM_NAME = "MessageKind"
_DROP_METHOD = "record_drop"


# ----------------------------------------------------------------------
# Contract data model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PayloadSchema:
    """One ``*Payload`` dataclass: its fields, in declaration order."""

    name: str
    fields: Tuple[str, ...]
    path: str
    line: int


@dataclass(frozen=True)
class SendSite:
    """One ``sim.send(Message(MessageKind.X, ...))`` call."""

    path: str
    line: int
    kind: str
    payload_type: Optional[str]
    ttl: Optional[str]  # unparsed ttl expression, if the payload has one
    function: str
    is_relay: bool  # sits inside a handler scope for the same kind


@dataclass(frozen=True)
class HandleSite:
    """One kind guard inside an inbox loop."""

    path: str
    line: int
    kind: str
    function: str
    negated: bool  # ``is not``-and-skip style guard


@dataclass(frozen=True)
class FloodSpec:
    """How one TTL-bounded flood behaves, as proven from the source.

    ``radius_symbol`` names the hop budget the initial ttl was derived
    from (``'k'`` for ``self.k - 1``, ``'m'`` for ``m - 1``); the model
    checker substitutes the concrete value per tau.
    """

    kind: str
    initial_ttl: Optional[str]
    radius_symbol: Optional[str]
    decrements: bool
    guarded: bool
    dedup_by_origin: bool


@dataclass
class ProtocolContract:
    """The extracted send/handle matrix of the runtime package."""

    kinds: Tuple[str, ...] = ()
    payloads: Dict[str, PayloadSchema] = field(default_factory=dict)
    payload_by_kind: Dict[str, str] = field(default_factory=dict)
    sends: List[SendSite] = field(default_factory=list)
    handles: List[HandleSite] = field(default_factory=list)
    floods: Dict[str, FloodSpec] = field(default_factory=dict)
    #: kinds whose payload carries adjacency rows (gossip, not a flood)
    gossip_kinds: Tuple[str, ...] = ()

    def matrix(self) -> Dict[str, Dict[str, int]]:
        """``{kind: {"sent": n, "handled": n}}`` — the send/handle matrix."""
        out: Dict[str, Dict[str, int]] = {
            kind: {"sent": 0, "handled": 0} for kind in self.kinds
        }
        for site in self.sends:
            out.setdefault(site.kind, {"sent": 0, "handled": 0})["sent"] += 1
        for site in self.handles:
            out.setdefault(site.kind, {"sent": 0, "handled": 0})["handled"] += 1
        return out

    def send_site(self, kind: str) -> Optional[SendSite]:
        """The first (initial, if any) send site of ``kind``."""
        initial = [s for s in self.sends if s.kind == kind and not s.is_relay]
        sites = initial or [s for s in self.sends if s.kind == kind]
        return sites[0] if sites else None


# ----------------------------------------------------------------------
# Per-file parsing helpers
# ----------------------------------------------------------------------
@dataclass
class _SourceFile:
    path: Path
    rel: str
    tree: ast.Module
    lines: List[str]


def _parse_files(paths: Sequence[Path], root: Path) -> List[_SourceFile]:
    files: List[_SourceFile] = []
    for path in sorted({Path(p).resolve() for p in paths}):
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            continue  # repro-lint owns the syntax-error finding
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        files.append(_SourceFile(path, rel, tree, source.splitlines()))
    return files


def _finding(rule: str, name: str, rel: str, node: ast.AST, message: str) -> Finding:
    return Finding(
        path=rel,
        rule=rule,
        name=name,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


def _kind_ref(node: ast.AST) -> Optional[str]:
    """``MessageKind.X`` -> ``"X"``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == _ENUM_NAME
    ):
        return node.attr
    return None


def _is_dataclass_def(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else getattr(
            target, "id", None
        )
        if name == "dataclass":
            return True
    return False


def _message_call(node: ast.AST) -> Optional[ast.Call]:
    """The ``Message(...)`` constructor call, if ``node`` is one."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "Message"
    ):
        return node
    return None


def _send_arg(node: ast.Call) -> Optional[ast.Call]:
    """For a ``<sim>.send(...)`` call, its ``Message(...)`` argument."""
    if not (isinstance(node.func, ast.Attribute) and node.func.attr == "send"):
        return None
    if len(node.args) != 1:
        return None
    return _message_call(node.args[0])


def _ttl_kwarg(ctor: ast.Call) -> Optional[ast.expr]:
    for kw in ctor.keywords:
        if kw.arg == "ttl":
            return kw.value
    return None


def _qualname(stack: Sequence[ast.AST]) -> str:
    parts = [
        n.name
        for n in stack
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    ]
    return ".".join(parts) or "<module>"


def _contains(haystack: ast.AST, needle: ast.AST) -> bool:
    return any(node is needle for node in ast.walk(haystack))


def _test_mentions(
    test: ast.expr, attr: str, check: Callable[[ast.Compare], bool]
) -> bool:
    """Does ``test`` contain a Compare on ``<x>.attr`` satisfying ``check``?"""
    for node in ast.walk(test):
        if not isinstance(node, ast.Compare):
            continue
        left = node.left
        if isinstance(left, ast.Attribute) and left.attr == attr:
            if check(node):
                return True
    return False


def _is_ttl_positive_guard(test: ast.expr) -> bool:
    def check(cmp: ast.Compare) -> bool:
        return (
            len(cmp.ops) == 1
            and isinstance(cmp.ops[0], ast.Gt)
            and isinstance(cmp.comparators[0], ast.Constant)
            and cmp.comparators[0].value == 0
        )

    return _test_mentions(test, "ttl", check)


def _is_origin_dedup_guard(test: ast.expr) -> bool:
    def check(cmp: ast.Compare) -> bool:
        return len(cmp.ops) == 1 and isinstance(cmp.ops[0], ast.NotIn)

    return _test_mentions(test, "origin", check)


def _is_decremented_ttl(expr: ast.expr) -> bool:
    """``<something>.ttl - 1`` (the only shape that proves a decrement)."""
    return (
        isinstance(expr, ast.BinOp)
        and isinstance(expr.op, ast.Sub)
        and isinstance(expr.right, ast.Constant)
        and expr.right.value == 1
        and isinstance(expr.left, ast.Attribute)
        and expr.left.attr == "ttl"
    )


def _radius_symbol(expr: ast.expr) -> Optional[str]:
    """``self.k - 1`` -> ``'k'``; ``m - 1`` -> ``'m'``; else ``None``."""
    if not (
        isinstance(expr, ast.BinOp)
        and isinstance(expr.op, ast.Sub)
        and isinstance(expr.right, ast.Constant)
        and expr.right.value == 1
    ):
        return None
    base = expr.left
    if isinstance(base, ast.Attribute):
        return base.attr if base.attr in ("k", "m") else None
    if isinstance(base, ast.Name):
        return base.id if base.id in ("k", "m") else None
    return None


# ----------------------------------------------------------------------
# Handler-scope analysis
# ----------------------------------------------------------------------
@dataclass
class _HandlerScope:
    """Statements that run for exactly one message kind."""

    kind: str
    guard: ast.If
    body: List[ast.stmt]
    negated: bool


def _inbox_loops(fn: ast.AST) -> List[Tuple[ast.For, str]]:
    """``for <msg> in <sim>.inbox(...)`` loops inside one function."""
    loops: List[Tuple[ast.For, str]] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.For):
            continue
        it = node.iter
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Attribute)
            and it.func.attr == "inbox"
            and isinstance(node.target, ast.Name)
        ):
            loops.append((node, node.target.id))
    return loops


def _guard_kind(test: ast.expr, msg_var: str) -> Optional[Tuple[str, bool]]:
    """``(kind, negated)`` for a ``<msg>.kind is [not] MessageKind.X`` test."""
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
        return None
    left = test.left
    if not (
        isinstance(left, ast.Attribute)
        and left.attr == "kind"
        and isinstance(left.value, ast.Name)
        and left.value.id == msg_var
    ):
        return None
    kind = _kind_ref(test.comparators[0])
    if kind is None:
        return None
    op = test.ops[0]
    if isinstance(op, (ast.Is, ast.Eq)):
        return kind, False
    if isinstance(op, (ast.IsNot, ast.NotEq)):
        return kind, True
    return None


def _skips(body: Sequence[ast.stmt]) -> bool:
    """Does this guard body end the current message's processing?"""
    return bool(body) and isinstance(body[-1], (ast.Continue, ast.Break, ast.Return))


def _calls_record_drop(nodes: Sequence[ast.stmt]) -> bool:
    for stmt in nodes:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == _DROP_METHOD
            ):
                return True
    return False


def _loop_scopes(
    loop: ast.For, msg_var: str
) -> Tuple[List[_HandlerScope], List[ast.If]]:
    """Handler scopes of one inbox loop, plus its unaccounted guards.

    Two supported shapes::

        if msg.kind is MessageKind.X:      # positive: body handles X
            ...
        if msg.kind is not MessageKind.X:  # negated: the *rest* of the
            record_drop(...); continue     # loop body handles X
            ...

    The second return value lists guards whose skip path drops kinds
    without accounting (the REPRO205 anchors).
    """
    scopes: List[_HandlerScope] = []
    silent: List[ast.If] = []

    def visit(body: List[ast.stmt]) -> None:
        for i, stmt in enumerate(body):
            if not isinstance(stmt, ast.If):
                continue
            guarded = _guard_kind(stmt.test, msg_var)
            if guarded is None:
                visit(stmt.body)
                visit(stmt.orelse)
                continue
            kind, negated = guarded
            if negated and _skips(stmt.body):
                scopes.append(
                    _HandlerScope(kind, stmt, body[i + 1 :], negated=True)
                )
                if not _calls_record_drop(stmt.body):
                    silent.append(stmt)
            elif not negated:
                scopes.append(
                    _HandlerScope(kind, stmt, stmt.body, negated=False)
                )
                if stmt.orelse:
                    visit(stmt.orelse)
                    if not _calls_record_drop(stmt.orelse):
                        silent.append(stmt)
                else:
                    silent.append(stmt)

    visit(loop.body)
    return scopes, silent


def _payload_aliases(loop: ast.For, msg_var: str) -> Set[str]:
    """Names assigned ``<msg>.payload`` anywhere in the loop body."""
    aliases: Set[str] = set()
    for node in ast.walk(loop):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "payload"
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id == msg_var
        ):
            aliases.add(node.targets[0].id)
    return aliases


def _payload_reads(
    scope_body: Sequence[ast.stmt], msg_var: str, aliases: Set[str]
) -> List[Tuple[ast.Attribute, str]]:
    """``(node, field)`` for every payload attribute read in a scope."""
    reads: List[Tuple[ast.Attribute, str]] = []
    for stmt in scope_body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Attribute):
                continue
            base = node.value
            if isinstance(base, ast.Name) and base.id in aliases:
                reads.append((node, node.attr))
            elif (
                isinstance(base, ast.Attribute)
                and base.attr == "payload"
                and isinstance(base.value, ast.Name)
                and base.value.id == msg_var
            ):
                reads.append((node, node.attr))
    return reads


# ----------------------------------------------------------------------
# The extractor
# ----------------------------------------------------------------------
class ContractExtractor:
    """Derive the :class:`ProtocolContract` from parsed runtime sources."""

    def __init__(self, files: List[_SourceFile]) -> None:
        self.files = files
        self.findings: List[Finding] = []
        self.contract = ProtocolContract()

    # -- step 1: kinds and payload schemas -----------------------------
    def _collect_definitions(self) -> None:
        kinds: List[str] = []
        payloads: Dict[str, PayloadSchema] = {}
        for src in self.files:
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if node.name == _ENUM_NAME:
                    for stmt in node.body:
                        if (
                            isinstance(stmt, ast.Assign)
                            and len(stmt.targets) == 1
                            and isinstance(stmt.targets[0], ast.Name)
                        ):
                            kinds.append(stmt.targets[0].id)
                elif node.name.endswith("Payload") and _is_dataclass_def(node):
                    fields = tuple(
                        stmt.target.id
                        for stmt in node.body
                        if isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)
                    )
                    payloads[node.name] = PayloadSchema(
                        node.name, fields, src.rel, node.lineno
                    )
        self.contract.kinds = tuple(kinds)
        self.contract.payloads = payloads

    # -- step 2: send sites and kind->payload binding -------------------
    def _collect_sends(self) -> None:
        for src in self.files:
            stack: List[ast.AST] = []

            def visit(node: ast.AST) -> None:
                stack.append(node)
                for child in ast.iter_child_nodes(node):
                    visit(child)
                stack.pop()
                if not isinstance(node, ast.Call):
                    return
                message = _send_arg(node)
                if message is None:
                    return
                self._register_send(src, message, _qualname(stack))

            visit(src.tree)

    def _register_send(
        self, src: _SourceFile, message: ast.Call, function: str
    ) -> None:
        kind: Optional[str] = None
        if message.args:
            kind = _kind_ref(message.args[0])
        for kw in message.keywords:
            if kw.arg == "kind":
                kind = _kind_ref(kw.value)
        if kind is None:
            return
        payload_type: Optional[str] = None
        ttl: Optional[str] = None
        for kw in message.keywords:
            if kw.arg != "payload":
                continue
            if isinstance(kw.value, ast.Call) and isinstance(
                kw.value.func, ast.Name
            ):
                payload_type = kw.value.func.id
                ttl_expr = _ttl_kwarg(kw.value)
                if ttl_expr is not None:
                    ttl = ast.unparse(ttl_expr)
        if payload_type is not None:
            bound = self.contract.payload_by_kind.get(kind)
            if bound is None:
                self.contract.payload_by_kind[kind] = payload_type
            elif bound != payload_type:
                self.findings.append(
                    _finding(
                        "REPRO203",
                        "payload-field",
                        src.rel,
                        message,
                        f"MessageKind.{kind} is sent with payload "
                        f"{payload_type} here but {bound} elsewhere",
                    )
                )
        self.contract.sends.append(
            SendSite(
                path=src.rel,
                line=message.lineno,
                kind=kind,
                payload_type=payload_type,
                ttl=ttl,
                function=function,
                is_relay=False,  # refined by _collect_handlers
            )
        )

    # -- step 3: handler scopes, relays, drops, payload reads ------------
    def _collect_handlers(self) -> None:
        relay_lines: Set[Tuple[str, int]] = set()
        for src in self.files:
            functions = [
                node
                for node in ast.walk(src.tree)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            for fn in functions:
                for loop, msg_var in _inbox_loops(fn):
                    scopes, silent = _loop_scopes(loop, msg_var)
                    aliases = _payload_aliases(loop, msg_var)
                    for guard in silent:
                        self.findings.append(
                            _finding(
                                "REPRO205",
                                "silent-drop",
                                src.rel,
                                guard,
                                "inbox loop skips message kinds without "
                                "accounting; route the skip path through "
                                "RuntimeStats.record_drop(kind)",
                            )
                        )
                    for scope in scopes:
                        self.contract.handles.append(
                            HandleSite(
                                path=src.rel,
                                line=scope.guard.lineno,
                                kind=scope.kind,
                                function=fn.name,
                                negated=scope.negated,
                            )
                        )
                        self._check_scope(src, scope, msg_var, aliases)
                        for line in self._relay_lines(scope):
                            relay_lines.add((src.rel, line))
        self.contract.sends = [
            SendSite(
                path=s.path,
                line=s.line,
                kind=s.kind,
                payload_type=s.payload_type,
                ttl=s.ttl,
                function=s.function,
                is_relay=(s.path, s.line) in relay_lines,
            )
            for s in self.contract.sends
        ]

    def _relay_lines(self, scope: _HandlerScope) -> List[int]:
        lines: List[int] = []
        for stmt in scope.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    message = _send_arg(node)
                    if message is not None:
                        sent_kind = None
                        if message.args:
                            sent_kind = _kind_ref(message.args[0])
                        if sent_kind == scope.kind:
                            lines.append(message.lineno)
        return lines

    def _check_scope(
        self,
        src: _SourceFile,
        scope: _HandlerScope,
        msg_var: str,
        aliases: Set[str],
    ) -> None:
        schema = self._schema_for(scope.kind)
        if schema is not None:
            for node, fieldname in _payload_reads(scope.body, msg_var, aliases):
                if fieldname not in schema.fields:
                    self.findings.append(
                        _finding(
                            "REPRO203",
                            "payload-field",
                            src.rel,
                            node,
                            f"payload of MessageKind.{scope.kind} "
                            f"({schema.name}) has no field "
                            f"'{fieldname}' (fields: "
                            f"{', '.join(schema.fields)})",
                        )
                    )
        # Relays: every same-kind send inside the scope must decrement a
        # guarded ttl.
        for stmt in scope.body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                message = _send_arg(node)
                if message is None:
                    continue
                sent_kind = _kind_ref(message.args[0]) if message.args else None
                if sent_kind != scope.kind:
                    continue
                self._check_relay(src, scope, message, stmt)

    def _check_relay(
        self,
        src: _SourceFile,
        scope: _HandlerScope,
        message: ast.Call,
        root_stmt: ast.stmt,
    ) -> None:
        ctor: Optional[ast.Call] = None
        for kw in message.keywords:
            if kw.arg == "payload" and isinstance(kw.value, ast.Call):
                ctor = kw.value
        ttl_expr = _ttl_kwarg(ctor) if ctor is not None else None
        if ttl_expr is None or not _is_decremented_ttl(ttl_expr):
            self.findings.append(
                _finding(
                    "REPRO204",
                    "ttl-relay",
                    src.rel,
                    message,
                    f"relay of MessageKind.{scope.kind} does not provably "
                    "decrement ttl (expected `<payload>.ttl - 1`)",
                )
            )
        guarded = False
        for stmt in scope.body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.If)
                    and _contains(node, message)
                    and _is_ttl_positive_guard(node.test)
                ):
                    guarded = True
        if not guarded:
            self.findings.append(
                _finding(
                    "REPRO204",
                    "ttl-relay",
                    src.rel,
                    message,
                    f"relay of MessageKind.{scope.kind} is not guarded by "
                    "a `ttl > 0` test; an exhausted flood must stop",
                )
            )

    def _schema_for(self, kind: str) -> Optional[PayloadSchema]:
        name = self.contract.payload_by_kind.get(kind)
        if name is None:
            return None
        return self.contract.payloads.get(name)

    # -- step 4: payload constructor validation -------------------------
    def _check_constructors(self) -> None:
        for src in self.files:
            for node in ast.walk(src.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in self.contract.payloads
                ):
                    continue
                schema = self.contract.payloads[node.func.id]
                if any(kw.arg is None for kw in node.keywords):
                    continue  # **kwargs: nothing provable for this call
                given: List[str] = list(schema.fields[: len(node.args)])
                if len(node.args) > len(schema.fields):
                    self.findings.append(
                        _finding(
                            "REPRO203",
                            "payload-field",
                            src.rel,
                            node,
                            f"{schema.name}(...) takes "
                            f"{len(schema.fields)} field(s), "
                            f"{len(node.args)} positional given",
                        )
                    )
                for kw in node.keywords:
                    if kw.arg not in schema.fields:
                        self.findings.append(
                            _finding(
                                "REPRO203",
                                "payload-field",
                                src.rel,
                                node,
                                f"{schema.name}(...) has no field "
                                f"'{kw.arg}' (fields: "
                                f"{', '.join(schema.fields)})",
                            )
                        )
                    else:
                        given.append(kw.arg)
                missing = [f for f in schema.fields if f not in given]
                if missing:
                    self.findings.append(
                        _finding(
                            "REPRO203",
                            "payload-field",
                            src.rel,
                            node,
                            f"{schema.name}(...) misses required field(s) "
                            f"{', '.join(missing)}",
                        )
                    )

    # -- step 5: matrix checks ------------------------------------------
    def _check_matrix(self) -> None:
        sent = {s.kind for s in self.contract.sends}
        handled = {h.kind for h in self.contract.handles}
        for site in self.contract.sends:
            if site.kind not in handled:
                self.findings.append(
                    _finding(
                        "REPRO201",
                        "sent-unhandled",
                        site.path,
                        _Loc(site.line),
                        f"MessageKind.{site.kind} is sent here but no inbox "
                        "loop handles it",
                    )
                )
        for site in self.contract.handles:
            if site.kind not in sent:
                self.findings.append(
                    _finding(
                        "REPRO202",
                        "handled-unsent",
                        site.path,
                        _Loc(site.line),
                        f"MessageKind.{site.kind} is handled here but never "
                        "sent",
                    )
                )
        for kind in self.contract.kinds:
            if kind not in sent and kind not in handled:
                schema_src = next(
                    (
                        src
                        for src in self.files
                        for node in ast.walk(src.tree)
                        if isinstance(node, ast.ClassDef)
                        and node.name == _ENUM_NAME
                    ),
                    None,
                )
                rel = schema_src.rel if schema_src is not None else "<unknown>"
                self.findings.append(
                    _finding(
                        "REPRO202",
                        "handled-unsent",
                        rel,
                        _Loc(1),
                        f"MessageKind.{kind} is defined but never sent nor "
                        "handled",
                    )
                )

    # -- step 6: flood specs --------------------------------------------
    def _build_floods(self) -> None:
        gossip: List[str] = []
        for kind in self.contract.kinds:
            schema = self._schema_for(kind)
            if schema is None:
                continue
            if "adjacency" in schema.fields:
                gossip.append(kind)
                continue
            if "ttl" not in schema.fields:
                continue
            initial = [
                s
                for s in self.contract.sends
                if s.kind == kind and not s.is_relay and s.ttl is not None
            ]
            relays = [s for s in self.contract.sends if s.kind == kind and s.is_relay]
            initial_ttl = initial[0].ttl if initial else None
            symbol: Optional[str] = None
            if initial:
                # Re-parse the recorded expression; it came from unparse.
                try:
                    symbol = _radius_symbol(
                        ast.parse(initial[0].ttl, mode="eval").body
                    )
                except SyntaxError:
                    symbol = None
            decrements = bool(relays) and not any(
                f.rule == "REPRO204"
                and "decrement" in f.message
                and f"MessageKind.{kind}" in f.message
                for f in self.findings
            )
            guarded = bool(relays) and not any(
                f.rule == "REPRO204"
                and "guarded" in f.message
                and f"MessageKind.{kind}" in f.message
                for f in self.findings
            )
            dedup = self._has_origin_dedup(kind)
            self.contract.floods[kind] = FloodSpec(
                kind=kind,
                initial_ttl=initial_ttl,
                radius_symbol=symbol,
                decrements=decrements,
                guarded=guarded,
                dedup_by_origin=dedup,
            )
        self.contract.gossip_kinds = tuple(gossip)

    def _has_origin_dedup(self, kind: str) -> bool:
        for src in self.files:
            for fn in ast.walk(src.tree):
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for loop, msg_var in _inbox_loops(fn):
                    scopes, __ = _loop_scopes(loop, msg_var)
                    for scope in scopes:
                        if scope.kind != kind:
                            continue
                        for stmt in scope.body:
                            for node in ast.walk(stmt):
                                if isinstance(
                                    node, ast.If
                                ) and _is_origin_dedup_guard(node.test):
                                    return True
        return False

    # -- entry point -----------------------------------------------------
    def extract(self) -> Tuple[ProtocolContract, List[Finding]]:
        self._collect_definitions()
        self._collect_sends()
        self._collect_handlers()
        self._check_constructors()
        self._check_matrix()
        self._build_floods()
        # Inline suppressions, per file the finding points into.
        lines_by_rel = {src.rel: src.lines for src in self.files}
        kept: List[Finding] = []
        for finding in self.findings:
            lines = lines_by_rel.get(finding.path)
            if lines is None:
                kept.append(finding)
            else:
                kept.extend(apply_suppressions([finding], lines))
        return self.contract, sorted(kept, key=lambda f: f.sort_key)


class _Loc:
    """A bare source location standing in for an AST node."""

    def __init__(self, lineno: int, col_offset: int = 0) -> None:
        self.lineno = lineno
        self.col_offset = col_offset


def extract_contract(
    paths: Sequence[Path], root: Optional[Path] = None
) -> Tuple[ProtocolContract, List[Finding]]:
    """Parse ``paths`` (files or directories) and extract the contract."""
    root = (root or Path.cwd()).resolve()
    expanded: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            expanded.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            expanded.append(path)
    files = _parse_files(expanded, root)
    return ContractExtractor(files).extract()


# ----------------------------------------------------------------------
# REPRO206: cross-module constant consistency
# ----------------------------------------------------------------------
#: (relative path, description, matcher name, expected source shape)
_CONSTANT_CONTRACTS: Tuple[Tuple[str, str, str, str], ...] = (
    (
        "src/repro/topology/radii.py",
        "neighborhood_radius must compute ceil(tau / 2)",
        "return_in:neighborhood_radius",
        "math.ceil(tau / 2)",
    ),
    (
        "src/repro/topology/radii.py",
        "mis_separation must derive from the deletion radius",
        "return_in:mis_separation",
        "deletion_radius(tau) + 1",
    ),
    (
        "src/repro/topology/radii.py",
        "halo_radius must equal the neighbourhood radius",
        "return_in:halo_radius",
        "neighborhood_radius(tau)",
    ),
    (
        "src/repro/core/vpt.py",
        "deletion_radius must delegate to neighborhood_radius",
        "return_in:deletion_radius",
        "neighborhood_radius(tau)",
    ),
    (
        "src/repro/core/scheduler.py",
        "the MIS separation must be the named mis_separation(tau) derivation",
        "assign:separation",
        "mis_separation(tau)",
    ),
    (
        "src/repro/runtime/protocol.py",
        "the protocol's k must come from deletion_radius(tau)",
        "assign_attr:k",
        "deletion_radius(tau)",
    ),
    (
        "src/repro/runtime/protocol.py",
        "the protocol's m must be k + 1",
        "assign_attr:m",
        "self.k + 1",
    ),
    (
        "src/repro/runtime/mis.py",
        "the PRIORITY flood budget must be the caller's m",
        "ttl_kwarg:PriorityPayload",
        "m - 1",
    ),
)


def check_constants(root: Path) -> List[Finding]:
    """REPRO206: the k/m radius derivations must agree across modules.

    Each contract pins one load-bearing expression to its canonical
    shape (textual, after ``ast.unparse`` normalisation).  A module that
    is absent is skipped — fixture trees check only what they contain.
    """
    findings: List[Finding] = []
    for rel, why, matcher, expected in _CONSTANT_CONTRACTS:
        path = root / rel
        if not path.exists():
            continue
        source = path.read_text()
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        found = _match_constant(tree, matcher)
        if found is None:
            findings.append(
                Finding(
                    path=rel,
                    rule="REPRO206",
                    name="constant-consistency",
                    line=1,
                    col=0,
                    message=f"{why}: expected site not found",
                )
            )
        else:
            node, actual = found
            if actual != expected:
                findings.append(
                    Finding(
                        path=rel,
                        rule="REPRO206",
                        name="constant-consistency",
                        line=node.lineno,
                        col=node.col_offset,
                        message=f"{why}: found `{actual}`, expected "
                        f"`{expected}`",
                    )
                )
    kept: List[Finding] = []
    for finding in findings:
        lines = (root / finding.path).read_text().splitlines()
        kept.extend(apply_suppressions([finding], lines))
    return sorted(kept, key=lambda f: f.sort_key)


def _match_constant(
    tree: ast.Module, matcher: str
) -> Optional[Tuple[ast.AST, str]]:
    scheme, __, target = matcher.partition(":")
    if scheme == "return_in":
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) and node.name == target:
                for stmt in ast.walk(node):
                    if isinstance(stmt, ast.Return) and stmt.value is not None:
                        return stmt, ast.unparse(stmt.value)
        return None
    if scheme == "assign":
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == target
            ):
                return node, ast.unparse(node.value)
        return None
    if scheme == "assign_attr":
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and node.targets[0].attr == target
                and isinstance(node.targets[0].value, ast.Name)
                and node.targets[0].value.id == "self"
            ):
                return node, ast.unparse(node.value)
        return None
    if scheme == "ttl_kwarg":
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == target
            ):
                ttl = _ttl_kwarg(node)
                if ttl is not None:
                    return node, ast.unparse(ttl)
        return None
    raise ValueError(f"unknown constant matcher: {matcher}")

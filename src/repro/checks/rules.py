"""The repo-specific determinism rules.

Each rule encodes one way the reproduction's correctness argument has
been observed (or is known from the literature) to break: the paper's
DCC schedule is only well-defined if every node computes the *same*
verdicts from the same k-hop view, so unseeded randomness, unordered
iteration feeding order-sensitive sinks, and wall clock inside
deterministic paths are all reproduction bugs even when no test catches
them.

The set-iteration rule carries a small flow analysis: an expression is
*set-typed* if it is syntactically a set (literal, comprehension,
``set()``/``frozenset()`` call, set algebra), a name or ``self``
attribute assigned such an expression, a parameter annotated ``Set`` /
``FrozenSet``, a subscript into a ``Dict[..., Set[...]]`` attribute, or
a call to one of this repo's known set-returning APIs (``vertex_set``,
``edge_set``, ``k_hop_neighborhood``, ``punctured_neighborhood``,
``ball``).  Only iterations whose *consumer* is ordering-sensitive are
flagged — building another set, counting, or ``sorted()`` are all fine.

``dict`` iteration is deliberately exempt: CPython dicts preserve
insertion order, so a dict built deterministically iterates
deterministically; sets make no such promise across platforms or hash
seeds.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.checks.engine import Finding, ModuleContext, Rule
from repro.checks.locality import _bound_node_names

# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> full dotted path, from every import in the module."""
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _resolve(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Fully-qualified dotted path of a call target, via the import map."""
    dotted = _dotted(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    full_head = imports.get(head, head)
    return f"{full_head}.{rest}" if rest else full_head


def _snippet(node: ast.AST, limit: int = 48) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on py>=3.9
        text = "<expr>"
    return text if len(text) <= limit else text[: limit - 3] + "..."


# ----------------------------------------------------------------------
# REPRO101: unseeded RNG in library code
# ----------------------------------------------------------------------
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "vonmisesvariate", "triangular", "getrandbits", "seed",
    "paretovariate", "weibullvariate", "lognormvariate",
}


class UnseededRngRule(Rule):
    """``random.Random()`` without a seed / global-state ``random.*``.

    Library code must draw from an explicitly seeded generator object
    (``random.Random(seed)``) that the caller can plumb a seed into;
    the process-global RNG makes every run — and every *node* of the
    distributed protocol — diverge.  The numpy analogue is REPRO109.
    """

    rule_id = "REPRO101"
    name = "unseeded-rng"
    summary = "unseeded or process-global RNG in library code"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = _import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            full = _resolve(node.func, imports)
            if full is None:
                continue
            if full == "random.Random" and not node.args and not node.keywords:
                yield self.finding(
                    ctx, node, "random.Random() without a seed argument"
                )
            elif full.startswith("random.") and full.split(".", 1)[1] in _GLOBAL_RANDOM_FNS:
                yield self.finding(
                    ctx,
                    node,
                    f"{full}() uses the process-global RNG; "
                    "draw from a seeded random.Random instance",
                )


# ----------------------------------------------------------------------
# REPRO109: unseeded numpy.random generators and legacy global draws
# ----------------------------------------------------------------------
#: ``numpy.random`` bit-generator classes (all take ``seed`` first).
_NUMPY_BIT_GENERATORS = {"PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"}
#: Constructors whose first argument (or ``seed=``) is the seed.
_NUMPY_SEEDED_CONSTRUCTORS = (
    {"default_rng", "SeedSequence", "RandomState"} | _NUMPY_BIT_GENERATORS
)


def _unseeded_call(node: ast.Call) -> bool:
    """No seed argument at all, or an explicit ``None`` seed."""
    seed: Optional[ast.AST] = None
    if node.args:
        seed = node.args[0]
    else:
        for keyword in node.keywords:
            if keyword.arg == "seed":
                seed = keyword.value
                break
    if seed is None:
        return True
    return isinstance(seed, ast.Constant) and seed.value is None


class NumpyRngRule(Rule):
    """Unseeded ``numpy.random`` use, now that numpy is in the runtime.

    The batched verdict kernel pulled numpy into library code, so the
    REPRO101 argument applies to its RNG surface too — in all three
    shapes it comes in: ``default_rng()`` / ``SeedSequence()`` /
    bit generators without an explicit seed (``None`` counts — that is
    OS entropy), ``Generator(...)`` wrapping an unseeded bit generator,
    and the legacy module-level draws (``numpy.random.rand`` et al.),
    which mutate process-global state no worker can reproduce.
    ``numpy.random.seed`` is flagged with the latter: seeding the
    global RNG *is* hidden shared state, exactly what the scheduler's
    plumbed ``random.Random(seed)`` objects exist to avoid.
    """

    rule_id = "REPRO109"
    name = "unseeded-numpy-rng"
    summary = "unseeded numpy.random generator or legacy global draw"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = _import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            full = _resolve(node.func, imports)
            if full is None or not full.startswith("numpy.random."):
                continue
            tail = full[len("numpy.random."):]
            if tail == "Generator":
                if not node.args:
                    yield self.finding(
                        ctx,
                        node,
                        "numpy.random.Generator() without a bit generator; "
                        "use numpy.random.default_rng(seed)",
                    )
                    continue
                source = node.args[0]
                if isinstance(source, ast.Call):
                    inner = _resolve(source.func, imports)
                    if (
                        inner is not None
                        and inner.startswith("numpy.random.")
                        and inner[len("numpy.random."):]
                        in _NUMPY_BIT_GENERATORS
                        and _unseeded_call(source)
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"{_snippet(node)}: Generator over an unseeded "
                            "bit generator; pass an explicit seed",
                        )
            elif tail in _NUMPY_SEEDED_CONSTRUCTORS:
                if _unseeded_call(node):
                    yield self.finding(
                        ctx,
                        node,
                        f"{full}() without an explicit seed "
                        "(None draws OS entropy)",
                    )
            else:
                yield self.finding(
                    ctx,
                    node,
                    f"{full}() uses numpy's process-global RNG; "
                    "use numpy.random.default_rng(seed)",
                )


# ----------------------------------------------------------------------
# REPRO102: unordered set iteration into ordering-sensitive sinks
# ----------------------------------------------------------------------
_SET_CONSTRUCTORS = {"set", "frozenset"}
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}
#: Repo APIs documented to return ``set`` / ``frozenset``.
_REPO_SET_METHODS = {
    "vertex_set", "edge_set", "k_hop_neighborhood", "punctured_neighborhood",
    "ball", "ball_ids", "neighbors",
}
_SET_ANNOTATION_NAMES = {
    "Set", "FrozenSet", "set", "frozenset", "AbstractSet", "MutableSet",
}
_DICT_ANNOTATION_NAMES = {"Dict", "dict", "Mapping", "MutableMapping"}
#: Order-insensitive consumers: a comprehension/generator feeding these
#: cannot leak set order into the result.
_ORDER_INSENSITIVE_CALLS = {
    "sorted", "set", "frozenset", "sum", "min", "max", "any", "all", "len",
}
_APPEND_LIKE = {"append", "extend", "insert", "appendleft", "extendleft"}
_ORDERING_FUNCS = {"insort", "insort_left", "insort_right", "heappush"}


def _annotation_kind(node: Optional[ast.AST]) -> Optional[str]:
    """``"set"`` / ``"dict_of_set"`` / ``None`` for a type annotation."""
    if node is None:
        return None
    if isinstance(node, ast.Name) and node.id in _SET_ANNOTATION_NAMES:
        return "set"
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name):
            if base.id in _SET_ANNOTATION_NAMES:
                return "set"
            if base.id in _DICT_ANNOTATION_NAMES:
                sl = node.slice
                if isinstance(sl, ast.Tuple) and len(sl.elts) == 2:
                    if _annotation_kind(sl.elts[1]) == "set":
                        return "dict_of_set"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _annotation_kind(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return None
    return None


class _ClassAttrTypes:
    """Collect ``self.X`` attribute kinds across one class body.

    Annotated attribute assignments type directly; plain assignments
    (``self._keep = keep``) are typed through each method's local
    environment, so ``keep = set(vs); self._keep = keep`` resolves.
    """

    def __init__(self) -> None:
        self.attrs: Dict[str, str] = {}

    def visit(self, cls: ast.ClassDef) -> None:
        methods = [
            item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # Annotations first (they also seed the per-method environments).
        for node in ast.walk(cls):
            if isinstance(node, ast.AnnAssign):
                target = node.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    kind = _annotation_kind(node.annotation)
                    if kind:
                        self.attrs[target.attr] = kind
        for method in methods:
            local = _function_local_types(method, self.attrs)
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        if _is_set_expr(node.value, local, self.attrs):
                            self.attrs.setdefault(target.attr, "set")


def _syntactic_set(node: ast.AST) -> bool:
    """Is this expression a set by syntax alone (no environment)?"""
    return _is_set_expr(node, {}, {})


def _is_set_expr(
    node: ast.AST, local_types: Dict[str, str], attr_types: Dict[str, str]
) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in _SET_METHODS | _REPO_SET_METHODS:
                return True
            # dict-of-set .pop(key) hands back the set value
            if (
                func.attr == "pop"
                and len(node.args) >= 1
                and _is_dict_of_set(func.value, local_types, attr_types)
            ):
                return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, local_types, attr_types) or _is_set_expr(
            node.right, local_types, attr_types
        )
    if isinstance(node, ast.IfExp):
        return _is_set_expr(node.body, local_types, attr_types) or _is_set_expr(
            node.orelse, local_types, attr_types
        )
    if isinstance(node, ast.Name):
        return local_types.get(node.id) == "set"
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return attr_types.get(node.attr) == "set"
        return False
    if isinstance(node, ast.Subscript):
        return _is_dict_of_set(node.value, local_types, attr_types)
    return False


def _is_dict_of_set(
    node: ast.AST, local_types: Dict[str, str], attr_types: Dict[str, str]
) -> bool:
    if isinstance(node, ast.Name):
        return local_types.get(node.id) == "dict_of_set"
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "self":
            return attr_types.get(node.attr) == "dict_of_set"
    return False


def _function_local_types(
    fn: ast.AST, attr_types: Dict[str, str]
) -> Dict[str, str]:
    """Name -> kind for parameters (by annotation) and local assignments."""
    local: Dict[str, str] = {}
    if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = list(fn.args.posonlyargs) + list(fn.args.args) + list(
            fn.args.kwonlyargs
        )
        for arg in args:
            kind = _annotation_kind(arg.annotation)
            if kind:
                local[arg.arg] = kind
    # Two passes so order of definition vs. use does not matter; the
    # environment grows monotonically (set algebra of set names).
    for _ in range(2):
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if _is_set_expr(node.value, local, attr_types):
                        local.setdefault(target.id, "set")
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                kind = _annotation_kind(node.annotation)
                if kind:
                    local[node.target.id] = kind
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Name
            ):
                # ``s |= other`` marks s as a set
                if isinstance(node.op, (ast.BitOr, ast.BitAnd)) and _is_set_expr(
                    node.value, local, attr_types
                ):
                    local.setdefault(node.target.id, "set")
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                # ``for k, row in d.items()`` / ``for row in d.values()``
                # over a Dict[..., Set[...]] bind set-typed loop vars.
                it = node.iter
                if (
                    isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Attribute)
                    and _is_dict_of_set(it.func.value, local, attr_types)
                ):
                    if (
                        it.func.attr == "items"
                        and isinstance(node.target, ast.Tuple)
                        and len(node.target.elts) == 2
                        and isinstance(node.target.elts[1], ast.Name)
                    ):
                        local.setdefault(node.target.elts[1].id, "set")
                    elif it.func.attr == "values" and isinstance(
                        node.target, ast.Name
                    ):
                        local.setdefault(node.target.id, "set")
    return local


def _body_has_order_sink(body: Sequence[ast.stmt]) -> Optional[str]:
    """Name of the first ordering-sensitive effect in a loop body."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yield"
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _APPEND_LIKE:
                    return func.attr
                if isinstance(func, ast.Name) and func.id in _ORDERING_FUNCS:
                    return func.id
    return None


class SetIterationOrderRule(Rule):
    """Unordered set iteration flowing into an ordering-sensitive sink.

    Set iteration order is a function of the hash seed, the platform and
    the insertion/deletion history; when it feeds an ordered result
    (a list, a yield stream, an MIS draw, a deletion order) the output
    stops being a pure function of the graph.  Wrap the iterable in
    ``sorted(...)`` or restructure so the consumer is order-free.
    """

    rule_id = "REPRO102"
    name = "set-iteration-order"
    summary = "set iteration feeding an ordering-sensitive sink"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        # Parent map over the whole module: comprehension-consumer
        # detection and enclosing-class lookup both need it.
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        # Pass 1: class attribute kinds, per class.
        class_attrs: Dict[ast.ClassDef, Dict[str, str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                collector = _ClassAttrTypes()
                collector.visit(node)
                class_attrs[node] = collector.attrs
        # Pass 2: each scope is analysed with its own environment —
        # module statements with an empty one, every function with its
        # local inference plus the nearest enclosing class's attributes.
        yield from self._scan(ctx, ctx.tree, {}, {}, parents)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                attrs = self._enclosing_attrs(node, parents, class_attrs)
                local = _function_local_types(node, attrs)
                yield from self._scan(ctx, node, local, attrs, parents)

    @staticmethod
    def _enclosing_attrs(
        node: ast.AST,
        parents: Dict[ast.AST, ast.AST],
        class_attrs: Dict[ast.ClassDef, Dict[str, str]],
    ) -> Dict[str, str]:
        up = parents.get(node)
        while up is not None:
            if isinstance(up, ast.ClassDef):
                return class_attrs.get(up, {})
            up = parents.get(up)
        return {}

    def _scan(
        self,
        ctx: ModuleContext,
        scope: ast.AST,
        local_types: Dict[str, str],
        attr_types: Dict[str, str],
        parents: Dict[ast.AST, ast.AST],
    ) -> Iterator[Finding]:
        """DFS of one scope, pruning nested function/class subtrees."""
        stack: List[ast.AST] = [scope]
        while stack:
            node = stack.pop()
            if node is not scope and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield from self._check_node(ctx, node, local_types, attr_types, parents)
            stack.extend(ast.iter_child_nodes(node))

    def _check_node(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        local_types: Dict[str, str],
        attr_types: Dict[str, str],
        parents: Dict[ast.AST, ast.AST],
    ) -> Iterator[Finding]:
        is_set = lambda expr: _is_set_expr(expr, local_types, attr_types)  # noqa: E731
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in ("list", "tuple", "enumerate")
                and len(node.args) == 1
                and is_set(node.args[0])
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{func.id}() materialises unordered set "
                    f"`{_snippet(node.args[0])}` into an ordered sequence; "
                    "wrap it in sorted(...)",
                )
        elif isinstance(node, (ast.For, ast.AsyncFor)) and is_set(node.iter):
            sink = _body_has_order_sink(node.body)
            if sink is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"iteration over set `{_snippet(node.iter)}` feeds "
                    f"ordering-sensitive sink `{sink}`; iterate "
                    "sorted(...) instead",
                )
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            if any(is_set(gen.iter) for gen in node.generators):
                parent = parents.get(node)
                if (
                    isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id in _ORDER_INSENSITIVE_CALLS
                ):
                    return
                if isinstance(parent, ast.Call) and isinstance(
                    parent.func, ast.Attribute
                ) and parent.func.attr in _SET_METHODS | {"isdisjoint", "update",
                                                          "issubset", "issuperset"}:
                    return
                kind = "list" if isinstance(node, ast.ListComp) else "generator"
                iter_src = next(
                    _snippet(g.iter) for g in node.generators if is_set(g.iter)
                )
                yield self.finding(
                    ctx,
                    node,
                    f"{kind} comprehension over set `{iter_src}` leaks set "
                    "order into an ordered result; iterate sorted(...) or "
                    "feed an order-free consumer",
                )


# ----------------------------------------------------------------------
# REPRO103: wall clock outside the observability layer
# ----------------------------------------------------------------------
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallClockRule(Rule):
    """``time.time()`` / ``datetime.now()`` outside ``repro/obs``.

    Wall-clock reads belong to the observability layer, whose exports
    mark them volatile and strip them before determinism comparisons.
    (``perf_counter`` / ``process_time`` are *allowed* everywhere: they
    are interval timers that only ever feed volatile metrics.)
    """

    rule_id = "REPRO103"
    name = "wall-clock"
    summary = "wall-clock call outside the obs layer"
    allowed_path_parts: Tuple[str, ...] = ("repro/obs/", "repro/checks/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if any(part in ctx.rel_path for part in self.allowed_path_parts):
            return
        imports = _import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            full = _resolve(node.func, imports)
            if full in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"{full}() in a deterministic path; route timing "
                    "through repro.obs (volatile metrics) instead",
                )


# ----------------------------------------------------------------------
# REPRO104: layering contract (kernel must stay below obs)
# ----------------------------------------------------------------------
#: (path substring, forbidden import prefix, why)
_LAYER_CONTRACTS: Tuple[Tuple[str, str, str], ...] = (
    (
        "repro/cycles/",
        "repro.obs",
        "the kernel is observed through a duck-typed tracer attribute; an "
        "obs import would close the obs -> viz -> graph -> kernel cycle",
    ),
    (
        "repro/network/",
        "repro.obs",
        "graph primitives sit below the observability layer",
    ),
    (
        "repro/checks/sanitizer",
        "repro.topology",
        "the topology engine imports the sanitizer; importing it back "
        "would create an import cycle",
    ),
)


class LayeringRule(Rule):
    """Forbidden cross-layer imports (module-level *and* lazy)."""

    rule_id = "REPRO104"
    name = "layering"
    summary = "import that violates the layering contract"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        contracts = [
            (prefix, why)
            for part, prefix, why in _LAYER_CONTRACTS
            if part in ctx.rel_path
        ]
        if not contracts:
            return
        for node in ast.walk(ctx.tree):
            modules: List[str] = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                modules = [node.module]
            for module in modules:
                for prefix, why in contracts:
                    if module == prefix or module.startswith(prefix + "."):
                        yield self.finding(
                            ctx, node, f"import of {module} is forbidden here: {why}"
                        )


# ----------------------------------------------------------------------
# REPRO105: mutable default arguments
# ----------------------------------------------------------------------
class MutableDefaultRule(Rule):
    """``def f(x=[])`` — shared mutable state across calls."""

    rule_id = "REPRO105"
    name = "mutable-default"
    summary = "mutable default argument"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.SetComp,
                                        ast.ListComp, ast.DictComp)):
                    bad = True
                elif isinstance(default, ast.Call) and isinstance(
                    default.func, ast.Name
                ) and default.func.id in ("list", "dict", "set", "bytearray"):
                    bad = True
                else:
                    bad = False
                if bad:
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default `{_snippet(default)}` in {name}(); "
                        "use None and construct inside",
                    )


# ----------------------------------------------------------------------
# REPRO106: bare except
# ----------------------------------------------------------------------
class BareExceptRule(Rule):
    """``except:`` swallows SystemExit/KeyboardInterrupt and real bugs."""

    rule_id = "REPRO106"
    name = "bare-except"
    summary = "bare except clause"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx, node, "bare `except:`; catch a specific exception type"
                )


# ----------------------------------------------------------------------
# REPRO107: float accumulation inside mergeable metrics
# ----------------------------------------------------------------------
_MERGE_METHOD_NAMES = {"merge", "merge_payload", "__iadd__", "__add__"}


class FloatMergeRule(Rule):
    """Division / averaging inside a ``merge`` method.

    A merge that averages (``(a + b) / 2``) is not associative:
    ``merge(a, merge(b, c)) != merge(merge(a, b), c)``.  Mergeable
    metrics must accumulate totals and counts and derive means at export
    time only.
    """

    rule_id = "REPRO107"
    name = "float-merge"
    summary = "non-associative float arithmetic inside a merge method"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for item in cls.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name not in _MERGE_METHOD_NAMES:
                    continue
                for node in ast.walk(item):
                    if isinstance(node, ast.BinOp) and isinstance(
                        node.op, (ast.Div, ast.FloorDiv)
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"division inside {cls.name}.{item.name}(); "
                            "merged means break associativity — merge "
                            "totals and counts, derive means at export",
                        )
                    elif isinstance(node, ast.AugAssign) and isinstance(
                        node.op, (ast.Div, ast.FloorDiv)
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"in-place division inside {cls.name}.{item.name}(); "
                            "merged means break associativity",
                        )


# ----------------------------------------------------------------------
# REPRO108: seed plumb-through on public entry points
# ----------------------------------------------------------------------
class SeedPlumbingRule(Rule):
    """Optional ``rng=None`` without a ``seed`` fallback parameter.

    An entry point that *optionally* takes an RNG claims to be
    reproducible by default; without a ``seed`` parameter the default
    path has nothing deterministic to fall back on (or hardcodes it).
    Required ``rng`` parameters are fine — determinism is then the
    caller's explicit job.
    """

    rule_id = "REPRO108"
    name = "seed-plumbing"
    summary = "optional rng parameter without a seed parameter"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_") and node.name != "__init__":
                continue
            args = list(node.args.posonlyargs) + list(node.args.args)
            names = [a.arg for a in args] + [a.arg for a in node.args.kwonlyargs]
            if "rng" not in names or "seed" in names:
                continue
            # Is rng optional (defaulted to None)?
            defaults = node.args.defaults
            defaulted = args[len(args) - len(defaults):] if defaults else []
            rng_optional = any(
                a.arg == "rng"
                and isinstance(d, ast.Constant)
                and d.value is None
                for a, d in zip(defaulted, defaults)
            )
            for a, d in zip(node.args.kwonlyargs, node.args.kw_defaults):
                if a.arg == "rng" and isinstance(d, ast.Constant) and d.value is None:
                    rng_optional = True
            if rng_optional:
                yield self.finding(
                    ctx,
                    node,
                    f"{node.name}() takes rng=None without a seed parameter; "
                    "add seed=... so the default path is reproducible",
                )


# ----------------------------------------------------------------------
# REPRO113: shard-local code must stay inside its partition
# ----------------------------------------------------------------------
#: The module holding shard-*local* protocol logic.  Everything else in
#: ``repro/shard/`` (plan, halo, scheduler) *is* the coordinator side.
_SHARD_LOCAL_SUFFIX = "repro/shard/runtime.py"

#: Coordinator-scope vocabulary.  A shard sees only its partition blob
#: (owned + halo vertices and their induced edges); any of these names
#: appearing in shard-local code means deployment-global state leaked
#: across the halo-exchange boundary.
_COORDINATOR_STATE_NAMES = {
    "plan", "owner_of", "subscribers", "specs", "work",
    "full_graph", "global_graph", "coordinator", "sim",
}

#: Modules a shard-local file must not import: they hold (or can reach)
#: the whole deployment, which would let a shard compute verdicts from
#: vertices outside its owned+halo range.
_COORDINATOR_MODULE_PREFIXES = (
    "repro.shard.plan",
    "repro.shard.halo",
    "repro.shard.scheduler",
    "repro.core",
    "repro.parallel",
    "repro.analysis",
)


class ShardLocalityRule(Rule):
    """Shard-local code reaching for coordinator-scope state.

    The sharded scheduler's correctness argument (DESIGN.md section 9)
    rests on each shard computing verdicts and MIS votes from its own
    partition only — the owned region plus the ``ceil(tau/2)``-hop halo
    the coordinator ships to it.  This is the same locality discipline
    REPRO210 enforces for the per-node runtime, lifted to regions: the
    rule reuses that flow machinery (:func:`repro.checks.locality.
    _bound_node_names`) to tell a coordinator name that was *threaded
    in* as a parameter or loop binding from one that leaked in as a
    global, and reports accordingly.
    """

    rule_id = "REPRO113"
    name = "shard-locality"
    summary = "shard-local code reaches for coordinator-scope state"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.rel_path.endswith(_SHARD_LOCAL_SUFFIX):
            return
        bound = _bound_node_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            modules: List[str] = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                modules = [node.module]
            for module in modules:
                for prefix in _COORDINATOR_MODULE_PREFIXES:
                    if module == prefix or module.startswith(prefix + "."):
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {module} in shard-local code; the "
                            "coordinator side of the halo exchange must "
                            "stay out of the shard's reach",
                        )
            if isinstance(node, ast.Attribute):
                if node.attr in _COORDINATOR_STATE_NAMES:
                    yield self.finding(
                        ctx,
                        node,
                        f"attribute `.{node.attr}` is coordinator-scope "
                        "state; a shard may only read its own partition "
                        "(owned + halo rows shipped by the exchange)",
                    )
            elif isinstance(node, ast.Name) and node.id in _COORDINATOR_STATE_NAMES:
                how = (
                    "threaded in as a local binding"
                    if node.id in bound
                    else "read as a global"
                )
                yield self.finding(
                    ctx,
                    node,
                    f"coordinator-scope name `{node.id}` {how} in "
                    "shard-local code; verdicts must derive from the "
                    "partition blob alone",
                )


# ----------------------------------------------------------------------
# REPRO114: hot-path trace calls must be guarded
# ----------------------------------------------------------------------
#: modules where tracing must cost one attribute probe when disabled
_HOT_PATH_PARTS: Tuple[str, ...] = ("repro/cycles/", "repro/topology/")
_HOT_PATH_SUFFIXES: Tuple[str, ...] = ("repro/shard/runtime.py",)
_TRACE_METHODS = frozenset({"trace", "add_span"})


class TraceGuardRule(Rule):
    """Unguarded tracer calls in hot-path modules.

    The null-tracer contract (DESIGN.md section 6) lets coarse sites —
    one span per round, per figure, per sweep — call ``tracer.trace()``
    unconditionally, but in the per-vertex/per-wave hot paths even the
    no-op context manager's allocation shows up.  There, every
    ``.trace()`` / ``.add_span()`` must sit behind a cheap guard.  Two
    shapes are accepted:

    * an **ancestor guard** — the call is (transitively) inside the
      positive branch of an ``if`` whose test probes ``.enabled`` or
      compares against ``NULL_TRACER``
      (``if tracer.enabled: with tracer.trace(...)``), and
    * an **early-return guard** — a preceding top-level statement of
      the enclosing function tests the same thing and leaves
      (``trc = self.tracer``, ``if trc is None or not trc.enabled:
      return self._impl(...)``, then ``with trc.trace(...)``).

    The rule keys on the receiver name (``tracer`` / ``trc`` /
    ``*.tracer``), so unrelated ``.trace()`` methods stay out of scope.
    """

    rule_id = "REPRO114"
    name = "trace-guard"
    summary = "unguarded trace call in a hot-path module"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        hot = any(part in ctx.rel_path for part in _HOT_PATH_PARTS) or (
            ctx.rel_path.endswith(_HOT_PATH_SUFFIXES)
        )
        if not hot:
            return
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _TRACE_METHODS
            ):
                continue
            receiver = _dotted(node.func.value) or ""
            tail = receiver.rsplit(".", 1)[-1]
            if tail not in ("tracer", "trc"):
                continue
            if self._guarded(node, parents):
                continue
            yield self.finding(
                ctx,
                node,
                f"`{_snippet(node.func)}()` in a hot-path module without a "
                "`tracer.enabled` / NULL_TRACER guard; disabled runs must "
                "pay one attribute probe, not a no-op span",
            )

    @staticmethod
    def _is_guard_test(test: ast.AST) -> bool:
        for sub in ast.walk(test):
            if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
                return True
            if isinstance(sub, ast.Name) and sub.id == "NULL_TRACER":
                return True
        return False

    @staticmethod
    def _leaves(stmt: ast.If) -> bool:
        return bool(stmt.body) and isinstance(
            stmt.body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
        )

    def _guarded(self, call: ast.Call, parents: Dict[ast.AST, ast.AST]) -> bool:
        node: ast.AST = call
        while node in parents:
            parent = parents[node]
            if (
                isinstance(parent, ast.If)
                and any(node is stmt for stmt in parent.body)
                and self._is_guard_test(parent.test)
            ):
                return True
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Early-return guard: a preceding top-level statement of
                # this function that probes the tracer and leaves.
                for stmt in parent.body:
                    if stmt.lineno >= call.lineno:
                        break
                    if (
                        isinstance(stmt, ast.If)
                        and self._is_guard_test(stmt.test)
                        and self._leaves(stmt)
                    ):
                        return True
                return False
            node = parent
        return False


DEFAULT_RULES: Tuple[Rule, ...] = (
    UnseededRngRule(),
    NumpyRngRule(),
    SetIterationOrderRule(),
    WallClockRule(),
    LayeringRule(),
    MutableDefaultRule(),
    BareExceptRule(),
    FloatMergeRule(),
    SeedPlumbingRule(),
    ShardLocalityRule(),
    TraceGuardRule(),
)


def all_rules() -> List[Rule]:
    """Fresh instances of every default rule (rules are stateless)."""
    return [type(rule)() for rule in DEFAULT_RULES]

"""Distributed wall-clock attribution over aligned span streams.

The sharded scheduler's round loop is a sequence of coordinator-side
waits (``shard.barrier``), halo routing calls (``halo.route``) and
bookkeeping, while the shards' own busy intervals (``shard.subround``,
``shard.apply``) arrive on the same timeline via the v2 aligned span
payloads (:meth:`~repro.obs.tracer.Tracer.export_payload`).  This module
classifies each round's coordinator wall clock into **lanes**:

``compute_s``
    The pool-limited parallel compute time: per sub-round, the maximum
    over workers of the summed busy time of the shards that worker
    hosts (the shard-to-worker assignment is recorded in the
    ``shard.config`` span).  With one worker this degenerates to the
    serial sum; with per-shard workers to the straggler's busy time.
``barrier_wait_s``
    Coordinator barrier time *not* covered by shard compute — scheduling
    slack, IPC latency and straggler spread:
    ``max(0, barrier_s - compute_s)``.
``halo_s``
    Time inside :func:`halo route <repro.shard.scheduler._route_traced>`
    calls (serialisation-and-routing of boundary-band rows), with the
    routed ``rows``/``bytes`` carried alongside.
``merge_s``
    The unexplained remainder of the round
    (``round_wall - barrier - halo``): priority draw, batch commit and
    coordinator bookkeeping.

The lanes sum to the coordinator round wall by construction, so the
decomposition is exact rather than approximate.  Sub-round straggler
spread (max - min shard busy), per-shard busy totals and the compute
critical path ride along.  Everything here is volatile timing — in run
reports the attribution block is stripped down to its deterministic
skeleton (round/sub-round/row counts) by
:func:`repro.obs.export.strip_volatile`.

Unsharded runs get a coarse fallback: the fan-out barrier
(``fanout.barrier``) is the wait lane (an upper bound — it includes the
workers' own compute), phase spans make up the compute lane, the round
remainder is merge.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

ATTRIBUTION_SCHEMA = "repro.attribution/v1"

#: lane keys of one attributed round, in presentation order
LANES = ("compute_s", "barrier_wait_s", "halo_s", "merge_s")


def _new_lanes() -> Dict[str, float]:
    return {lane: 0.0 for lane in LANES}


def _accumulate(total: Dict[str, float], part: Dict[str, Any]) -> None:
    for lane in LANES:
        total[lane] += part[lane]
    total["wall_s"] += part["wall_s"]


# ----------------------------------------------------------------------
# Sharded attribution
# ----------------------------------------------------------------------
def _split_sharded(spans: Sequence[Any]) -> List[List[Any]]:
    """Split a record-ordered span stream into per-schedule segments.

    Each sharded schedule run stamps exactly one ``shard.config`` span
    before its first round; spans are recorded in exit order and the
    shard payloads merge before the run returns, so the slice between
    consecutive ``shard.config`` records holds everything the run
    produced.
    """
    marks = [
        i for i, span in enumerate(spans) if span.name == "shard.config"
    ]
    if not marks:
        return []
    bounds = marks + [len(spans)]
    return [list(spans[a:b]) for a, b in zip(bounds, bounds[1:])]


def _attribute_sharded(segment: Sequence[Any]) -> Dict[str, Any]:
    config = segment[0].attrs
    shard_count = int(config.get("shards", 1))
    assignment = config.get("assignment") or [list(range(shard_count))]

    round_wall: Dict[int, float] = {}
    barrier: Dict[int, Dict[int, float]] = {}
    halo: Dict[int, Dict[str, float]] = {}
    busy: Dict[int, Dict[int, Dict[int, float]]] = {}
    shm_attach_s = 0.0
    span_import_s = 0.0

    for span in segment:
        attrs = span.attrs
        name = span.name
        if name == "scheduler.round":
            rnd = attrs["round"]
            round_wall[rnd] = round_wall.get(rnd, 0.0) + span.wall_s
        elif name == "shard.barrier":
            per = barrier.setdefault(attrs["round"], {})
            sub = attrs["subround"]
            per[sub] = per.get(sub, 0.0) + span.wall_s
        elif name == "halo.route":
            lane = halo.setdefault(
                attrs["round"], {"wall_s": 0.0, "rows": 0, "bytes": 0}
            )
            lane["wall_s"] += span.wall_s
            lane["rows"] += attrs.get("rows", 0)
            lane["bytes"] += attrs.get("bytes", 0)
        elif name == "shard.subround":
            per = busy.setdefault(attrs["round"], {}).setdefault(
                attrs["subround"], {}
            )
            shard = attrs["shard"]
            per[shard] = per.get(shard, 0.0) + span.wall_s
        elif name == "shard.apply":
            # Deletions ride the next round's begin barrier (sub-round 0).
            per = busy.setdefault(attrs["round"], {}).setdefault(0, {})
            shard = attrs["shard"]
            per[shard] = per.get(shard, 0.0) + span.wall_s
        elif name == "shm.attach":
            shm_attach_s += span.wall_s
        elif name == "shard.merge":
            span_import_s += span.wall_s

    per_shard_busy = {s: 0.0 for s in range(shard_count)}
    per_shard_subrounds = {s: 0 for s in range(shard_count)}
    rounds: List[Dict[str, Any]] = []
    totals = _new_lanes()
    totals["wall_s"] = 0.0

    for rnd in sorted(round_wall):
        wall = round_wall[rnd]
        barrier_s = sum(barrier.get(rnd, {}).values())
        halo_lane = halo.get(rnd, {"wall_s": 0.0, "rows": 0, "bytes": 0})
        subround_busy = busy.get(rnd, {})
        compute_s = 0.0
        spread_s = 0.0
        for sub in sorted(subround_busy):
            shard_busy = subround_busy[sub]
            compute_s += max(
                (
                    sum(shard_busy.get(s, 0.0) for s in worker_shards)
                    for worker_shards in assignment
                ),
                default=0.0,
            )
            if shard_busy:
                spread_s = max(
                    spread_s, max(shard_busy.values()) - min(shard_busy.values())
                )
            for shard, busy_s in shard_busy.items():
                per_shard_busy[shard] = per_shard_busy.get(shard, 0.0) + busy_s
                per_shard_subrounds[shard] = (
                    per_shard_subrounds.get(shard, 0) + 1
                )
        row = {
            "round": rnd,
            "wall_s": wall,
            "compute_s": compute_s,
            "barrier_wait_s": max(0.0, barrier_s - compute_s),
            "halo_s": halo_lane["wall_s"],
            "merge_s": max(0.0, wall - barrier_s - halo_lane["wall_s"]),
            "subrounds": len(subround_busy),
            "halo_rows": int(halo_lane["rows"]),
            "halo_bytes": int(halo_lane["bytes"]),
            "straggler_spread_s": spread_s,
        }
        # Exactness: barrier splits into compute + wait, so the four
        # lanes cover the round wall (up to the merge-lane clamp).
        rounds.append(row)
        _accumulate(totals, row)

    return {
        "mode": "sharded",
        "shards": shard_count,
        "workers": int(config.get("workers", 1)),
        "rounds": rounds,
        "totals": totals,
        "per_shard": [
            {
                "shard": s,
                "busy_s": per_shard_busy.get(s, 0.0),
                "subrounds": per_shard_subrounds.get(s, 0),
            }
            for s in range(shard_count)
        ],
        "setup": {
            "shm_attach_s": shm_attach_s,
            "span_import_s": span_import_s,
        },
        "critical_path_s": totals["compute_s"],
    }


# ----------------------------------------------------------------------
# Unsharded (coarse) attribution
# ----------------------------------------------------------------------
_COMPUTE_PHASES = (
    "scheduler.candidates",
    "scheduler.mis_draw",
    "scheduler.deletion",
)


def _attribute_unsharded(spans: Sequence[Any]) -> Optional[Dict[str, Any]]:
    round_wall: Dict[int, float] = {}
    phase_s: Dict[int, float] = {}
    wait_s: Dict[int, float] = {}
    for span in spans:
        rnd = span.attrs.get("round")
        if rnd is None:
            continue
        if span.name == "scheduler.round":
            round_wall[rnd] = round_wall.get(rnd, 0.0) + span.wall_s
        elif span.name == "fanout.barrier":
            wait_s[rnd] = wait_s.get(rnd, 0.0) + span.wall_s
        elif span.name in _COMPUTE_PHASES:
            phase_s[rnd] = phase_s.get(rnd, 0.0) + span.wall_s
    if not round_wall:
        return None
    rounds: List[Dict[str, Any]] = []
    totals = _new_lanes()
    totals["wall_s"] = 0.0
    for rnd in sorted(round_wall):
        wall = round_wall[rnd]
        # The fan-out barrier nests inside scheduler.candidates, so the
        # compute lane is the phase time net of the wait (an upper-bound
        # wait: it includes the workers' own compute).
        wait = min(wait_s.get(rnd, 0.0), phase_s.get(rnd, 0.0))
        compute = max(0.0, phase_s.get(rnd, 0.0) - wait)
        row = {
            "round": rnd,
            "wall_s": wall,
            "compute_s": compute,
            "barrier_wait_s": wait,
            "halo_s": 0.0,
            "merge_s": max(0.0, wall - compute - wait),
            "subrounds": 0,
            "halo_rows": 0,
            "halo_bytes": 0,
            "straggler_spread_s": 0.0,
        }
        rounds.append(row)
        _accumulate(totals, row)
    return {
        "mode": "parallel",
        "shards": 1,
        "workers": 1,
        "rounds": rounds,
        "totals": totals,
        "per_shard": [],
        "setup": {"shm_attach_s": 0.0, "span_import_s": 0.0},
        "critical_path_s": totals["compute_s"],
    }


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def attribute_spans(spans: Sequence[Any]) -> Optional[Dict[str, Any]]:
    """Classify an aligned span stream into per-round wall-clock lanes.

    Returns ``None`` when the stream carries no scheduling rounds.  With
    ``shard.config`` markers present, each sharded schedule run becomes
    one entry of ``runs``; otherwise a single coarse unsharded run is
    attributed.  ``totals`` aggregates the lanes across runs.
    """
    segments = _split_sharded(spans)
    if segments:
        runs = [_attribute_sharded(segment) for segment in segments]
        runs = [run for run in runs if run["rounds"]]
    else:
        run = _attribute_unsharded(spans)
        runs = [run] if run is not None else []
    if not runs:
        return None
    totals = _new_lanes()
    totals["wall_s"] = 0.0
    round_count = 0
    for run in runs:
        _accumulate(totals, run["totals"])
        round_count += len(run["rounds"])
    totals["rounds"] = round_count
    return {
        "schema": ATTRIBUTION_SCHEMA,
        "mode": runs[0]["mode"],
        "runs": runs,
        "totals": totals,
    }


def attribution_from_tracer(tracer: Any) -> Optional[Dict[str, Any]]:
    """Attribution for everything a tracer has recorded so far."""
    if not getattr(tracer, "enabled", False):
        return None
    return attribute_spans(tracer.spans())


def _pct(part: float, whole: float) -> str:
    if whole <= 0.0:
        return "  0.0%"
    return f"{100.0 * part / whole:5.1f}%"


def attribution_summary(
    attribution: Dict[str, Any], max_rounds: int = 40
) -> str:
    """Human-readable attribution table (the ``--attribute`` output)."""
    lines: List[str] = []
    totals = attribution["totals"]
    lines.append(
        f"wall-clock attribution ({attribution['schema']}, "
        f"mode={attribution['mode']}, rounds={totals['rounds']})"
    )
    wall = totals["wall_s"]
    lines.append(
        "  total %.4fs = compute %.4fs (%s) + barrier-wait %.4fs (%s) "
        "+ halo %.4fs (%s) + merge %.4fs (%s)"
        % (
            wall,
            totals["compute_s"],
            _pct(totals["compute_s"], wall).strip(),
            totals["barrier_wait_s"],
            _pct(totals["barrier_wait_s"], wall).strip(),
            totals["halo_s"],
            _pct(totals["halo_s"], wall).strip(),
            totals["merge_s"],
            _pct(totals["merge_s"], wall).strip(),
        )
    )
    for index, run in enumerate(attribution["runs"]):
        run_totals = run["totals"]
        lines.append(
            f"  run {index}: {run['shards']} shard(s) x "
            f"{run['workers']} worker(s), wall {run_totals['wall_s']:.4f}s, "
            f"critical path {run['critical_path_s']:.4f}s"
        )
        header = (
            "    round     wall  compute     wait     halo    merge  "
            "sub   spread  halo rows/bytes"
        )
        lines.append(header)
        shown = run["rounds"][:max_rounds]
        for row in shown:
            lines.append(
                "    %5d %8.4f %8.4f %8.4f %8.4f %8.4f  %3d %8.4f  %d/%d"
                % (
                    row["round"],
                    row["wall_s"],
                    row["compute_s"],
                    row["barrier_wait_s"],
                    row["halo_s"],
                    row["merge_s"],
                    row["subrounds"],
                    row["straggler_spread_s"],
                    row["halo_rows"],
                    row["halo_bytes"],
                )
            )
        hidden = len(run["rounds"]) - len(shown)
        if hidden > 0:
            lines.append(f"    ... {hidden} more round(s)")
        if run["per_shard"]:
            busy = ", ".join(
                f"shard{entry['shard']} {entry['busy_s']:.4f}s"
                f"/{entry['subrounds']}sub"
                for entry in run["per_shard"]
            )
            lines.append(f"    per-shard busy: {busy}")
        setup = run["setup"]
        lines.append(
            "    setup: shm attach %.4fs, span import %.4fs"
            % (setup["shm_attach_s"], setup["span_import_s"])
        )
    return "\n".join(lines)

"""A registry of named counters, gauges and histograms.

The registry is the *numeric* half of the observability layer (spans are
the *temporal* half): scheduler rounds, simulator message traffic and
engine verdict latencies all land here as named metrics, and the
per-subsystem accounting objects that predate this layer —
:class:`~repro.topology.TopologyCounters` and
:class:`~repro.runtime.stats.RuntimeStats` — are absorbed wholesale via
:meth:`MetricsRegistry.absorb_topology` / :meth:`absorb_runtime`.

Merging is associative and order-insensitive for counters and
histograms' aggregates, and submission-ordered for histogram
observation lists, matching the parallel layer's determinism contract:
merging worker payloads in submission order yields the same registry at
any worker count.

Histograms flagged ``volatile`` hold wall-clock observations; their
value statistics are stripped by
:func:`repro.obs.export.strip_volatile` before determinism comparisons
(their *counts* are deterministic and survive the strip).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple


class Counter:
    """A monotonically accumulated integer."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins scalar (e.g. a configuration fact)."""

    __slots__ = ("value", "_set")
    kind = "gauge"

    def __init__(self) -> None:
        self.value: Optional[float] = None
        self._set = False

    def set(self, value: float) -> None:
        self.value = value
        self._set = True

    def merge(self, other: "Gauge") -> None:
        # ``other`` is the later observation by the merge-order contract.
        if other._set:
            self.value = other.value
            self._set = True

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A distribution of observations.

    Raw observations are kept (runs are bounded; exports summarise), so
    merge is plain submission-order concatenation — associative, and
    deterministic under the parallel layer's ordered-consumption rule.
    """

    __slots__ = ("values", "volatile")
    kind = "histogram"

    def __init__(self, volatile: bool = False) -> None:
        self.values: List[float] = []
        self.volatile = volatile

    def observe(self, value: float) -> None:
        self.values.append(value)

    def merge(self, other: "Histogram") -> None:
        self.values.extend(other.values)
        self.volatile = self.volatile or other.volatile

    @property
    def count(self) -> int:
        return len(self.values)

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile, ``q`` in [0, 100]."""
        if not self.values:
            return None
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "type": "histogram",
            "count": self.count,
            "volatile": self.volatile,
        }
        if self.values:
            total = sum(self.values)
            out.update(
                total=total,
                min=min(self.values),
                max=max(self.values),
                mean=total / len(self.values),
                p50=self.percentile(50),
                p90=self.percentile(90),
                p99=self.percentile(99),
            )
        return out


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named metrics with get-or-create accessors and associative merge."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def _get(self, name: str, cls: type, **kwargs: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(**kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, volatile: bool = False) -> Histogram:
        hist = self._get(name, Histogram, volatile=volatile)
        hist.volatile = hist.volatile or volatile
        return hist

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float, volatile: bool = False) -> None:
        self.histogram(name, volatile=volatile).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def items(self) -> Iterator[Tuple[str, Any]]:
        return iter(self._metrics.items())

    # ------------------------------------------------------------------
    # Absorption of the pre-existing accounting objects
    # ------------------------------------------------------------------
    def absorb_topology(self, counters: Any, prefix: str = "topology.") -> None:
        """Fold a :class:`TopologyCounters` delta into prefixed counters."""
        for name, value in counters.as_dict().items():
            if value:
                self.inc(prefix + name, value)

    def absorb_runtime(self, stats: Any, prefix: str = "runtime.") -> None:
        """Fold a :class:`RuntimeStats` delta into prefixed counters.

        The embedded topology counters land under ``topology.`` so the
        registry aggregates engine work identically whether it arrives
        via a schedule result or a runtime run.
        """
        self.inc(prefix + "rounds", stats.rounds)
        self.inc(prefix + "messages_sent", stats.messages_sent)
        self.inc(prefix + "messages_delivered", stats.messages_delivered)
        self.inc(prefix + "deletion_iterations", stats.deletion_iterations)
        for kind, count in sorted(stats.messages_by_kind.items()):
            self.inc(f"{prefix}messages_by_kind.{kind}", count)
        # Dropped-message counters only materialise when non-zero, so a
        # clean run's report is byte-identical to the pre-counter era.
        for kind, count in sorted(stats.messages_dropped.items()):
            if count:
                self.inc(f"{prefix}messages_dropped.{kind}", count)
        self.absorb_topology(stats.topology)

    def absorb_attribution(
        self, attribution: Dict[str, Any], prefix: str = "attribution."
    ) -> None:
        """Fold an attribution document's lane totals into the registry.

        Lane seconds land as volatile histograms (one observation per
        document — their statistics strip away in determinism
        comparisons); the attributed round count is a plain counter, so
        a report records *that* the analysis ran deterministically.
        """
        totals = attribution["totals"]
        for lane in ("wall_s", "compute_s", "barrier_wait_s", "halo_s", "merge_s"):
            self.observe(prefix + lane, totals[lane], volatile=True)
        self.inc(prefix + "rounds", totals["rounds"])

    # ------------------------------------------------------------------
    # Merge / wire format
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate ``other`` into this registry (associative)."""
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                cls = type(metric)
                if isinstance(metric, Histogram):
                    mine = Histogram(volatile=metric.volatile)
                else:
                    mine = cls()
                self._metrics[name] = mine
            elif type(mine) is not type(metric):
                raise TypeError(
                    f"metric {name!r}: cannot merge {metric.kind} into {mine.kind}"
                )
            mine.merge(metric)

    def to_payload(self) -> List[Tuple[str, str, Any, bool]]:
        """A picklable snapshot: ``(name, kind, data, volatile)`` rows."""
        rows: List[Tuple[str, str, Any, bool]] = []
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                rows.append((name, "counter", metric.value, False))
            elif isinstance(metric, Gauge):
                rows.append((name, "gauge", (metric.value, metric._set), False))
            else:
                rows.append((name, "histogram", list(metric.values), metric.volatile))
        return rows

    def merge_payload(self, payload: List[Tuple[str, str, Any, bool]]) -> None:
        """Merge a :meth:`to_payload` snapshot (submission order)."""
        for name, kind, data, volatile in payload:
            if kind == "counter":
                self.inc(name, data)
            elif kind == "gauge":
                value, was_set = data
                if was_set:
                    self.set_gauge(name, value)
            elif kind == "histogram":
                self.histogram(name, volatile=volatile).values.extend(data)
            else:
                raise ValueError(f"unknown metric kind {kind!r}")

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """Name-sorted plain-dict rendering (the run-report's ``metrics``)."""
        return {name: self._metrics[name].as_dict() for name in sorted(self._metrics)}

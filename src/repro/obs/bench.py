"""The ``repro-bench`` CLI: named benches with fingerprinted entries.

Benchmark numbers are only comparable when the environment that
produced them is recorded alongside, so every entry written here is
stamped with an **environment fingerprint** (``repro.bench/v2``): CPU
count, Python/NumPy versions, platform, and the determinism-relevant
knob set (``REPRO_BATCH_VERDICTS`` & co).  Entries merge into shared
JSON files by name through
:func:`repro.obs.export.merge_json_entry` — the ``BENCH_kernel.json``
convention — so partial runs never wipe history.

``repro-bench diff`` is the CI regression gate.  Its comparison rules
keep the gate non-flaky:

* deterministic fields (round counts, deletions, verdict-test counts,
  halo rows, recorded span counts) must match **exactly**;
* ``*bytes*`` fields get a fixed ~10% band (pickle framing varies
  across Python versions);
* timing fields (``*_s`` / ``*_ns`` / ``*_pct``) are compared **only**
  when ``--tolerance`` is given *and* the two entries' fingerprints
  (CPU count + knob set) match — wall clocks from different machines
  never fail the gate.

Named benches mirror the ``benchmarks/`` recipes at ``smoke`` (CI) or
``full`` scale; ``repro-bench normalize`` upgrades pre-fingerprint
entries in committed BENCH files without touching their measurements.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import random
import sys
import time
import timeit
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro import knobs
from repro.obs.export import merge_json_entry

BENCH_SCHEMA = "repro.bench/v2"

#: environment knobs that change what (or how) the benches compute —
#: derived from the declared registry (every knob marked fingerprint)
#: so a new determinism-relevant knob can never silently escape the
#: environment stamp.
KNOB_NAMES = knobs.knob_names(fingerprint=True)

#: fingerprint keys (never diffed as measurements)
FINGERPRINT_KEYS = frozenset(
    {"schema", "cpu_count", "python", "numpy", "platform", "knobs"}
)

#: context keys that describe the run configuration, diffed exactly
_TIMING_SUFFIXES = ("_s", "_ns", "_pct")


def env_fingerprint() -> Dict[str, Any]:
    """The environment stamp every bench entry carries."""
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is baked into the image
        numpy_version = None
    return {
        "schema": BENCH_SCHEMA,
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": platform.system().lower(),
        "knobs": {name: os.environ.get(name, "") for name in KNOB_NAMES},
    }


def stamp_entry(entry: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of ``entry`` carrying the current environment fingerprint."""
    stamped = dict(entry)
    stamped.update(env_fingerprint())
    return stamped


# ----------------------------------------------------------------------
# Named benches (smoke mirrors of the benchmarks/ recipes)
# ----------------------------------------------------------------------
_TAU = 4
_TARGET_DEGREE = 9.0


def _deployment(nodes: int) -> Tuple[Any, Set[int]]:
    """The ``benchmarks/test_shard_scale.py`` deployment recipe."""
    from repro.network.topologies import geometric_graph

    rng = random.Random(21)
    side = math.sqrt(nodes * math.pi / _TARGET_DEGREE)
    positions = {
        v: (rng.uniform(0, side), rng.uniform(0, side)) for v in range(nodes)
    }
    graph = geometric_graph(positions, 1.0)
    band = 1.0
    protected = {
        v
        for v, (x, y) in positions.items()
        if x < band or y < band or x > side - band or y > side - band
    }
    return graph, protected


def bench_shard_schedule(scale: str = "smoke") -> Dict[str, Any]:
    """Serial vs sharded schedule: identity, halo traffic, wall times."""
    from repro.core.scheduler import dcc_schedule
    from repro.shard import sharded_dcc_schedule

    nodes = 1_500 if scale == "smoke" else 10_000
    shards = 2 if scale == "smoke" else 4
    graph, protected = _deployment(nodes)
    start = time.perf_counter()
    serial = dcc_schedule(graph, protected, _TAU, rng=random.Random(0), workers=1)
    serial_wall = time.perf_counter() - start
    start = time.perf_counter()
    sharded = sharded_dcc_schedule(
        graph, protected, _TAU, random.Random(0), shards=shards, workers=1
    )
    sharded_wall = time.perf_counter() - start
    stats = sharded.shard_stats
    return {
        "scale": scale,
        "nodes": nodes,
        "tau": _TAU,
        "shards": shards,
        "rounds": serial.rounds,
        "deletions": len(serial.removed),
        "removed_identical": sharded.removed == serial.removed,
        "serial_wall_s": round(serial_wall, 4),
        "sharded_inline_wall_s": round(sharded_wall, 4),
        "halo_rows_total": stats.halo_rows_total,
        "halo_bytes_total": stats.halo_bytes_total,
        "serial_tests": serial.counters.deletability_tests,
        "sharded_tests": sharded.counters.deletability_tests,
    }


def bench_kernel_schedule(scale: str = "smoke") -> Dict[str, Any]:
    """A serial schedule over a smaller deployment (kernel-path gate)."""
    from repro.core.scheduler import dcc_schedule

    nodes = 400 if scale == "smoke" else 2_000
    graph, protected = _deployment(nodes)
    start = time.perf_counter()
    result = dcc_schedule(graph, protected, _TAU, rng=random.Random(0), workers=1)
    wall = time.perf_counter() - start
    counters = result.counters
    return {
        "scale": scale,
        "nodes": nodes,
        "tau": _TAU,
        "rounds": result.rounds,
        "deletions": len(result.removed),
        "wall_s": round(wall, 4),
        "deletability_tests": counters.deletability_tests,
        "bfs_expansions": counters.bfs_expansions,
    }


def bench_tracer_overhead(scale: str = "smoke") -> Dict[str, Any]:
    """Disabled-tracer overhead on the sharded+batched schedule path.

    The disabled run *is* the baseline, so its overhead cannot be
    measured by subtraction.  Instead the entry records a conservative
    upper bound: every guarded site costs one ``tracer.enabled``
    attribute probe, the number of probes is bounded by twice the span
    count an enabled run records (each span site probes once; pure
    guard sites probe without recording), and the probe cost comes from
    a ``timeit`` microbench.  ``guard_cost_pct`` is that bound as a
    percentage of the disabled wall — the ``<2%`` assertion of
    ``benchmarks/test_obs_overhead.py``.  The enabled-vs-disabled A/B
    (``enabled_overhead_pct``) rides along as an informational number;
    it measures *capture* cost, which the null-tracer contract does not
    bound.
    """
    from repro.obs.tracer import NULL_TRACER, Tracer, observe
    from repro.shard import sharded_dcc_schedule

    nodes = 1_500 if scale == "smoke" else 10_000
    shards = 2 if scale == "smoke" else 4
    graph, protected = _deployment(nodes)

    start = time.perf_counter()
    disabled = sharded_dcc_schedule(
        graph, protected, _TAU, random.Random(0), shards=shards, workers=1
    )
    disabled_wall = time.perf_counter() - start

    tracer = Tracer()
    start = time.perf_counter()
    with observe(tracer, None):
        enabled = sharded_dcc_schedule(
            graph, protected, _TAU, random.Random(0), shards=shards, workers=1
        )
    enabled_wall = time.perf_counter() - start
    spans = len(tracer.spans()) + tracer.dropped

    probes = 200_000
    per_guard_s = (
        timeit.timeit(
            "trc.enabled", globals={"trc": NULL_TRACER}, number=probes
        )
        / probes
    )
    guard_checks = spans * 2
    guard_cost_pct = 100.0 * guard_checks * per_guard_s / max(disabled_wall, 1e-9)
    return {
        "scale": scale,
        "nodes": nodes,
        "tau": _TAU,
        "shards": shards,
        "removed_identical": enabled.removed == disabled.removed,
        "spans": spans,
        "guard_checks": guard_checks,
        "per_guard_ns": round(per_guard_s * 1e9, 2),
        "disabled_wall_s": round(disabled_wall, 4),
        "enabled_wall_s": round(enabled_wall, 4),
        "guard_cost_pct": round(guard_cost_pct, 4),
        "enabled_overhead_pct": round(
            100.0 * (enabled_wall - disabled_wall) / max(disabled_wall, 1e-9),
            2,
        ),
    }


BENCHES: Dict[str, Callable[[str], Dict[str, Any]]] = {
    "kernel_schedule": bench_kernel_schedule,
    "shard_schedule": bench_shard_schedule,
    "tracer_overhead": bench_tracer_overhead,
}


# ----------------------------------------------------------------------
# Diff (the CI regression gate)
# ----------------------------------------------------------------------
def _is_timing(key: str) -> bool:
    return key.endswith(_TIMING_SUFFIXES)


def _same_env(base: Dict[str, Any], current: Dict[str, Any]) -> bool:
    return (
        base.get("cpu_count") == current.get("cpu_count")
        and base.get("knobs") == current.get("knobs")
    )


def diff_entries(
    name: str,
    base: Dict[str, Any],
    current: Dict[str, Any],
    tolerance: Optional[float] = None,
) -> List[str]:
    """Regression findings for one named entry (empty = gate passes)."""
    problems: List[str] = []
    comparable_env = _same_env(base, current)
    for key in sorted(set(base) & set(current)):
        if key in FINGERPRINT_KEYS:
            continue
        b, c = base[key], current[key]
        if _is_timing(key):
            if tolerance is None or not comparable_env:
                continue
            if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
                continue
            if c > b * (1.0 + tolerance) and c - b > 1e-6:
                problems.append(
                    f"{name}.{key}: {c} exceeds baseline {b} "
                    f"by more than {tolerance:.0%}"
                )
        elif "bytes" in key and isinstance(b, int) and isinstance(c, int):
            # Pickle framing drifts across Python versions; the traffic
            # itself (row counts) is gated exactly.
            if abs(c - b) > max(16, 0.1 * abs(b)):
                problems.append(
                    f"{name}.{key}: {c} outside the 10% band around {b}"
                )
        elif b != c:
            problems.append(f"{name}.{key}: {c!r} != baseline {b!r}")
    return problems


def diff_files(
    baseline_path: str,
    current_path: str,
    tolerance: Optional[float] = None,
) -> Tuple[List[str], List[str]]:
    """``(problems, notes)`` comparing two BENCH-convention JSON files."""
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    current = json.loads(Path(current_path).read_text(encoding="utf-8"))
    problems: List[str] = []
    notes: List[str] = []
    shared = sorted(set(baseline) & set(current))
    for name in sorted(set(baseline) - set(current)):
        notes.append(f"{name}: in baseline only (skipped)")
    for name in sorted(set(current) - set(baseline)):
        notes.append(f"{name}: new entry (no baseline)")
    for name in shared:
        found = diff_entries(name, baseline[name], current[name], tolerance)
        problems.extend(found)
        if not found:
            skipped_timing = tolerance is None or not _same_env(
                baseline[name], current[name]
            )
            notes.append(
                f"{name}: ok"
                + (" (timing skipped: env mismatch)" if skipped_timing else "")
            )
    if not shared:
        problems.append("no entries in common between baseline and current")
    return problems, notes


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _cmd_list(args: argparse.Namespace) -> int:
    for name in sorted(BENCHES):
        doc = (BENCHES[name].__doc__ or "").strip().splitlines()[0]
        print(f"{name:<18} {doc}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = args.names or sorted(BENCHES)
    unknown = [name for name in names if name not in BENCHES]
    if unknown:
        print(f"unknown bench(es): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in names:
        entry = stamp_entry(BENCHES[name](args.scale))
        merge_json_entry(args.out, name, entry)
        print(f"{name} -> {args.out}")
        print(f"  {json.dumps(entry, sort_keys=True)}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    problems, notes = diff_files(args.baseline, args.current, args.tolerance)
    for note in notes:
        print(f"  {note}")
    if problems:
        print(f"repro-bench diff: {len(problems)} regression(s)")
        for problem in problems:
            print(f"  REGRESSION {problem}")
        return 1
    print("repro-bench diff: no regressions")
    return 0


def _cmd_normalize(args: argparse.Namespace) -> int:
    target = Path(args.path)
    data = json.loads(target.read_text(encoding="utf-8"))
    fingerprint = env_fingerprint()
    for name, entry in data.items():
        # Keep every measured key (and a pre-existing cpu_count, which
        # described the measuring machine) — only fill in what the v2
        # schema adds.
        for key, value in fingerprint.items():
            entry.setdefault(key, value)
        print(f"normalized {name}")
    target.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Run named benches with environment-fingerprinted entries and "
            "diff them against committed baselines (the CI regression gate)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the named benches").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="run benches and merge stamped entries")
    run.add_argument("names", nargs="*", help="bench names (default: all)")
    run.add_argument(
        "--scale",
        choices=("smoke", "full"),
        default="smoke",
        help="bench size (smoke = CI scale)",
    )
    run.add_argument(
        "--out",
        default="BENCH_smoke.json",
        help="target JSON file (merge-by-name, default BENCH_smoke.json)",
    )
    run.set_defaults(func=_cmd_run)

    diff = sub.add_parser(
        "diff", help="compare a bench file against a committed baseline"
    )
    diff.add_argument("baseline", help="baseline JSON (committed)")
    diff.add_argument("current", help="freshly produced JSON")
    diff.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=(
            "relative slack for timing fields (e.g. 0.5 = +50%%); timing "
            "is only compared when the environment fingerprints match"
        ),
    )
    diff.set_defaults(func=_cmd_diff)

    normalize = sub.add_parser(
        "normalize",
        help="stamp pre-v2 entries in a BENCH file with the fingerprint schema",
    )
    normalize.add_argument("path", help="BENCH JSON file to upgrade in place")
    normalize.set_defaults(func=_cmd_normalize)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

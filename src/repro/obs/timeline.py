"""SVG per-round timelines: rounds x phases with a message-volume overlay.

Renders through the existing :mod:`repro.viz.svg` canvas (the repo has
no plotting dependency): every span carrying a ``round`` attribute
becomes a bar in its phase's row, bar height proportional to the span's
wall time within that phase; spans that also carry message counts (the
simulator's round spans) contribute a message-volume polyline across the
top band.  The output opens in any browser next to the Figure 2/7
snapshots.

:func:`render_lane_timeline` is the distributed view: one horizontal
lane per process (the coordinator plus every ``proc``-tagged shard or
fan-out worker from the aligned v2 span payloads), busy intervals drawn
at their true aligned times, coordinator barrier windows shaded across
all lanes (uncovered shading *is* barrier wait), and the halo exchange's
rows/bytes overlaid from the ``halo.route`` span attributes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs.tracer import Span, Tracer
from repro.viz.svg import SvgCanvas

#: attribute names that count message traffic in a round span
_MESSAGE_ATTRS = ("delivered", "messages", "sent")

_ROW_HEIGHT = 1.0
_BAR_FILL = 0.82
_PHASE_COLORS = (
    "#1f77b4",
    "#ff7f0e",
    "#2ca02c",
    "#d62728",
    "#9467bd",
    "#8c564b",
    "#17becf",
)


def _message_count(attrs: Dict[str, Any]) -> Optional[float]:
    for key in _MESSAGE_ATTRS:
        value = attrs.get(key)
        if isinstance(value, (int, float)):
            return float(value)
    return None


def render_timeline(
    spans: Sequence[Span],
    title: str = "",
    canvas: Optional[SvgCanvas] = None,
) -> SvgCanvas:
    """Draw the rounds-x-phases grid for every span with a ``round`` attr.

    Rows are phases in first-appearance order; columns are round
    numbers.  Bars are normalised per row (the tallest bar in a row is
    the row's slowest round), so phases of very different cost stay
    readable side by side.  Rounds with recorded message counts add an
    overlay band at the top.
    """
    canvas = canvas or SvgCanvas(width=960, height=480)
    rounds: List[int] = []
    phases: List[str] = []
    cells: Dict[str, Dict[int, float]] = {}
    traffic: Dict[int, float] = {}
    for span in spans:
        rnd = span.attrs.get("round")
        if not isinstance(rnd, int):
            continue
        if rnd not in rounds:
            rounds.append(rnd)
        row = cells.setdefault(span.name, {})
        if span.name not in phases:
            phases.append(span.name)
        row[rnd] = row.get(rnd, 0.0) + span.wall_s
        count = _message_count(span.attrs)
        if count is not None:
            traffic[rnd] = traffic.get(rnd, 0.0) + count
    if not phases:
        canvas.label((0.0, 0.0), "timeline: no round-attributed spans")
        return canvas

    rounds.sort()
    column = {rnd: i for i, rnd in enumerate(rounds)}
    width = float(len(rounds))
    n_rows = len(phases)
    overlay_rows = 1.5 if traffic else 0.0
    top = (n_rows + overlay_rows) * _ROW_HEIGHT

    # Row baselines and per-row-normalised bars.
    for i, phase in enumerate(phases):
        base = (n_rows - 1 - i) * _ROW_HEIGHT
        color = _PHASE_COLORS[i % len(_PHASE_COLORS)]
        canvas.line((0.0, base), (width, base), color="#dddddd", width=0.5)
        row = cells[phase]
        peak = max(row.values()) or 1.0
        for rnd, wall in sorted(row.items()):
            x = float(column[rnd])
            height = _BAR_FILL * _ROW_HEIGHT * (wall / peak if peak else 0.0)
            canvas.rect((x + 0.08, base), 0.84, max(height, 0.02), fill=color)
        canvas.label(
            (width + 0.15, base + 0.25 * _ROW_HEIGHT),
            f"{phase} (peak {peak:.4f}s)",
            size_px=11,
        )

    # Message-volume overlay band above the phase rows.
    if traffic:
        base = n_rows * _ROW_HEIGHT + 0.25
        peak = max(traffic.values()) or 1.0
        canvas.line((0.0, base), (width, base), color="#bbbbbb", width=0.5)
        previous = None
        for rnd in rounds:
            count = traffic.get(rnd)
            if count is None:
                previous = None
                continue
            x = column[rnd] + 0.5
            y = base + _ROW_HEIGHT * (count / peak)
            if previous is not None:
                canvas.line(previous, (x, y), color="#555555", width=1.2)
            canvas.circle((x, y), radius_px=2.5, fill="#555555")
            previous = (x, y)
        canvas.label(
            (width + 0.15, base + 0.25),
            f"messages/round (peak {peak:.0f})",
            size_px=11,
        )

    # Round axis ticks (thinned to at most ~12 labels).
    step = max(1, len(rounds) // 12)
    for i, rnd in enumerate(rounds):
        if i % step == 0:
            canvas.label((i + 0.3, -0.45), str(rnd), size_px=10)
    canvas.label((0.0, -0.9), "round", size_px=11)
    if title:
        canvas.label((0.0, top + 0.4), title, size_px=14)
    return canvas


def timeline_from_tracer(
    tracer: Tracer, title: str = "", canvas: Optional[SvgCanvas] = None
) -> SvgCanvas:
    """Convenience wrapper: render every round-attributed span recorded."""
    return render_timeline(tracer.spans(), title=title, canvas=canvas)


# ----------------------------------------------------------------------
# Multi-lane (per-process) timeline
# ----------------------------------------------------------------------
_LANE_SPAN_COLORS = {
    "shard.subround": "#1f77b4",
    "shard.apply": "#2ca02c",
    "shard.verdicts": "#aec7e8",
    "shm.attach": "#9467bd",
    "halo.route": "#ff7f0e",
    "shard.merge": "#8c564b",
}
_BARRIER_SHADE = "#e8e8e8"
_BUSY_COALESCED = "#1f77b4"
_LANE_GAP = 1.4
_LANE_BAR = 1.0
#: above this many drawable spans a lane coalesces them into busy blocks
_COALESCE_LIMIT = 400


def _coalesce(intervals: List[tuple], gap: float) -> List[tuple]:
    """Merge ``(start, end)`` intervals closer than ``gap`` apart."""
    merged: List[tuple] = []
    for start, end in sorted(intervals):
        if merged and start - merged[-1][1] <= gap:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def render_lane_timeline(
    spans: Sequence[Span],
    title: str = "",
    canvas: Optional[SvgCanvas] = None,
) -> SvgCanvas:
    """One lane per process on the aligned timeline, barrier-wait shaded.

    The coordinator lane holds the round structure (``halo.route``
    blocks, ``shard.merge``); each ``proc``-tagged process (shards,
    fan-out chunk workers) gets its own lane of top-level busy
    intervals.  ``shard.barrier`` windows are shaded behind every lane —
    shard busy bars covering the shading show parallel compute, the
    uncovered remainder is coordinator barrier wait.  A rows-per-route
    polyline above the lanes plots the halo traffic recorded on the
    ``halo.route`` spans.
    """
    canvas = canvas or SvgCanvas(width=1200, height=520)

    barriers: List[tuple] = []  # (start, end)
    rounds: List[tuple] = []  # (round, start)
    halo_points: List[tuple] = []  # (mid_time, rows, bytes)
    coordinator: List[Span] = []
    lanes: Dict[str, List[Span]] = {}
    for span in spans:
        proc = span.attrs.get("proc")
        if proc is not None:
            lanes.setdefault(str(proc), []).append(span)
            continue
        if span.name == "shard.barrier":
            barriers.append((span.start_s, span.start_s + span.wall_s))
        elif span.name == "scheduler.round":
            rounds.append((span.attrs.get("round"), span.start_s))
        elif span.name == "halo.route":
            halo_points.append(
                (
                    span.start_s + span.wall_s / 2.0,
                    span.attrs.get("rows", 0),
                    span.attrs.get("bytes", 0),
                )
            )
        if span.name in _LANE_SPAN_COLORS:
            coordinator.append(span)
    if not coordinator and not lanes:
        canvas.label((0.0, 0.0), "lane timeline: no distributed spans")
        return canvas

    lane_names = ["coordinator"] + sorted(lanes)
    lane_spans: Dict[str, List[Span]] = dict(lanes)
    lane_spans["coordinator"] = coordinator
    n_lanes = len(lane_names)

    extent = 0.0
    for entries in lane_spans.values():
        for span in entries:
            extent = max(extent, span.start_s + span.wall_s)
    for _, end in barriers:
        extent = max(extent, end)
    extent = extent or 1.0

    def lane_base(index: int) -> float:
        # Lane 0 (coordinator) on top; the y-axis points up.
        return (n_lanes - 1 - index) * _LANE_GAP

    # Barrier windows shade the full lane stack first (background).
    top = (n_lanes - 1) * _LANE_GAP + _LANE_BAR
    for start, end in _coalesce(barriers, 0.0):
        canvas.rect((start, -0.1), max(end - start, extent * 5e-4), top + 0.2, fill=_BARRIER_SHADE)

    for index, lane in enumerate(lane_names):
        base = lane_base(index)
        canvas.line((0.0, base), (extent, base), color="#bbbbbb", width=0.6)
        canvas.label((extent * 1.01, base + 0.2), lane, size_px=11)
        entries = lane_spans[lane]
        if not entries:
            continue
        if lane != "coordinator":
            # Keep only each process's top-level spans; nested detail
            # (e.g. shard.verdicts inside shard.subround) stays out of
            # the lane so busy intervals read as solid blocks.
            min_depth = min(span.depth for span in entries)
            entries = [span for span in entries if span.depth == min_depth]
        if len(entries) > _COALESCE_LIMIT:
            blocks = _coalesce(
                [(s.start_s, s.start_s + s.wall_s) for s in entries],
                extent / 2000.0,
            )
            for start, end in blocks:
                canvas.rect(
                    (start, base),
                    max(end - start, extent * 5e-4),
                    _LANE_BAR * 0.8,
                    fill=_BUSY_COALESCED,
                )
            continue
        for span in entries:
            color = _LANE_SPAN_COLORS.get(
                span.name,
                # Stable (hash-seed independent) palette assignment.
                _PHASE_COLORS[
                    sum(ord(c) for c in span.name) % len(_PHASE_COLORS)
                ],
            )
            canvas.rect(
                (span.start_s, base),
                max(span.wall_s, extent * 5e-4),
                _LANE_BAR * 0.8,
                fill=color,
            )

    # Halo rows/bytes overlay above the lanes.
    if halo_points:
        base = top + 0.6
        peak = max(rows for _, rows, _ in halo_points) or 1.0
        canvas.line((0.0, base), (extent, base), color="#bbbbbb", width=0.5)
        previous = None
        for when, rows, _ in sorted(halo_points):
            y = base + _LANE_BAR * (rows / peak)
            if previous is not None:
                canvas.line(previous, (when, y), color="#ff7f0e", width=1.2)
            canvas.circle((when, y), radius_px=2.0, fill="#ff7f0e")
            previous = (when, y)
        total_rows = sum(rows for _, rows, _ in halo_points)
        total_bytes = sum(nbytes for _, _, nbytes in halo_points)
        canvas.label(
            (extent * 1.01, base + 0.2),
            f"halo rows/route (peak {peak:.0f}, "
            f"total {total_rows} rows / {total_bytes} bytes)",
            size_px=11,
        )

    # Round boundary ticks along the bottom.
    step = max(1, len(rounds) // 16)
    for i, (rnd, start) in enumerate(sorted(rounds, key=lambda r: r[1])):
        if i % step == 0:
            canvas.line((start, -0.5), (start, -0.15), color="#888888", width=0.6)
            canvas.label((start, -0.85), str(rnd), size_px=9)
    canvas.label((0.0, -1.3), "aligned wall-clock seconds", size_px=11)
    if title:
        height = top + (2.4 if halo_points else 0.6)
        canvas.label((0.0, height), title, size_px=14)
    return canvas


def lane_timeline_from_tracer(
    tracer: Tracer, title: str = "", canvas: Optional[SvgCanvas] = None
) -> SvgCanvas:
    """Convenience wrapper over :func:`render_lane_timeline`."""
    return render_lane_timeline(tracer.spans(), title=title, canvas=canvas)

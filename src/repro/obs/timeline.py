"""SVG per-round timelines: rounds x phases with a message-volume overlay.

Renders through the existing :mod:`repro.viz.svg` canvas (the repo has
no plotting dependency): every span carrying a ``round`` attribute
becomes a bar in its phase's row, bar height proportional to the span's
wall time within that phase; spans that also carry message counts (the
simulator's round spans) contribute a message-volume polyline across the
top band.  The output opens in any browser next to the Figure 2/7
snapshots.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs.tracer import Span, Tracer
from repro.viz.svg import SvgCanvas

#: attribute names that count message traffic in a round span
_MESSAGE_ATTRS = ("delivered", "messages", "sent")

_ROW_HEIGHT = 1.0
_BAR_FILL = 0.82
_PHASE_COLORS = (
    "#1f77b4",
    "#ff7f0e",
    "#2ca02c",
    "#d62728",
    "#9467bd",
    "#8c564b",
    "#17becf",
)


def _message_count(attrs: Dict[str, Any]) -> Optional[float]:
    for key in _MESSAGE_ATTRS:
        value = attrs.get(key)
        if isinstance(value, (int, float)):
            return float(value)
    return None


def render_timeline(
    spans: Sequence[Span],
    title: str = "",
    canvas: Optional[SvgCanvas] = None,
) -> SvgCanvas:
    """Draw the rounds-x-phases grid for every span with a ``round`` attr.

    Rows are phases in first-appearance order; columns are round
    numbers.  Bars are normalised per row (the tallest bar in a row is
    the row's slowest round), so phases of very different cost stay
    readable side by side.  Rounds with recorded message counts add an
    overlay band at the top.
    """
    canvas = canvas or SvgCanvas(width=960, height=480)
    rounds: List[int] = []
    phases: List[str] = []
    cells: Dict[str, Dict[int, float]] = {}
    traffic: Dict[int, float] = {}
    for span in spans:
        rnd = span.attrs.get("round")
        if not isinstance(rnd, int):
            continue
        if rnd not in rounds:
            rounds.append(rnd)
        row = cells.setdefault(span.name, {})
        if span.name not in phases:
            phases.append(span.name)
        row[rnd] = row.get(rnd, 0.0) + span.wall_s
        count = _message_count(span.attrs)
        if count is not None:
            traffic[rnd] = traffic.get(rnd, 0.0) + count
    if not phases:
        canvas.label((0.0, 0.0), "timeline: no round-attributed spans")
        return canvas

    rounds.sort()
    column = {rnd: i for i, rnd in enumerate(rounds)}
    width = float(len(rounds))
    n_rows = len(phases)
    overlay_rows = 1.5 if traffic else 0.0
    top = (n_rows + overlay_rows) * _ROW_HEIGHT

    # Row baselines and per-row-normalised bars.
    for i, phase in enumerate(phases):
        base = (n_rows - 1 - i) * _ROW_HEIGHT
        color = _PHASE_COLORS[i % len(_PHASE_COLORS)]
        canvas.line((0.0, base), (width, base), color="#dddddd", width=0.5)
        row = cells[phase]
        peak = max(row.values()) or 1.0
        for rnd, wall in sorted(row.items()):
            x = float(column[rnd])
            height = _BAR_FILL * _ROW_HEIGHT * (wall / peak if peak else 0.0)
            canvas.rect((x + 0.08, base), 0.84, max(height, 0.02), fill=color)
        canvas.label(
            (width + 0.15, base + 0.25 * _ROW_HEIGHT),
            f"{phase} (peak {peak:.4f}s)",
            size_px=11,
        )

    # Message-volume overlay band above the phase rows.
    if traffic:
        base = n_rows * _ROW_HEIGHT + 0.25
        peak = max(traffic.values()) or 1.0
        canvas.line((0.0, base), (width, base), color="#bbbbbb", width=0.5)
        previous = None
        for rnd in rounds:
            count = traffic.get(rnd)
            if count is None:
                previous = None
                continue
            x = column[rnd] + 0.5
            y = base + _ROW_HEIGHT * (count / peak)
            if previous is not None:
                canvas.line(previous, (x, y), color="#555555", width=1.2)
            canvas.circle((x, y), radius_px=2.5, fill="#555555")
            previous = (x, y)
        canvas.label(
            (width + 0.15, base + 0.25),
            f"messages/round (peak {peak:.0f})",
            size_px=11,
        )

    # Round axis ticks (thinned to at most ~12 labels).
    step = max(1, len(rounds) // 12)
    for i, rnd in enumerate(rounds):
        if i % step == 0:
            canvas.label((i + 0.3, -0.45), str(rnd), size_px=10)
    canvas.label((0.0, -0.9), "round", size_px=11)
    if title:
        canvas.label((0.0, top + 0.4), title, size_px=14)
    return canvas


def timeline_from_tracer(
    tracer: Tracer, title: str = "", canvas: Optional[SvgCanvas] = None
) -> SvgCanvas:
    """Convenience wrapper: render every round-attributed span recorded."""
    return render_timeline(tracer.spans(), title=title, canvas=canvas)

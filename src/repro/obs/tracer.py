"""Low-overhead structured span tracing.

A :class:`Tracer` records *spans* — named, nested intervals with wall
and CPU time plus free-form attributes — into a bounded ring buffer.
Spans are recorded at **exit** time, so a parent's record always follows
its children's; every consumer (phase aggregation, the profile tree, the
timeline) relies on that exit-order nesting invariant.

The default tracer everywhere is :data:`NULL_TRACER`, whose
``enabled`` attribute is ``False``: hot paths guard their timing with a
single attribute lookup (``if tracer.enabled:``) and pay nothing else
when tracing is off.  Coarse sites (one span per scheduling round, per
figure, per sweep) may call :meth:`Tracer.trace` unconditionally — the
null tracer hands back a shared no-op context manager.

An *ambient* tracer/metrics pair can be installed with :func:`observe`;
:func:`current_tracer` / :func:`current_metrics` are how layers that are
not explicitly threaded an observer (the scheduler, the simulator, the
sweep runner) pick one up.  The ambient slot is process-global: worker
processes of the parallel layer start with the null tracer and install
their own capture-local observers (see :mod:`repro.parallel.runner`).

Determinism contract: span *names, attributes, nesting and order* are
deterministic functions of the computation at a fixed seed; only the
``start_s`` / ``wall_s`` / ``cpu_s`` fields are volatile.  Run-report
comparisons must strip the volatile fields (see
:func:`repro.obs.export.strip_volatile`).
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: picklable wire format for a span: (name, depth, start_s, wall_s, cpu_s, attrs)
SpanTuple = Tuple[str, int, float, float, float, Dict[str, Any]]

#: schema version of the dict payload produced by :meth:`Tracer.export_payload`
PAYLOAD_VERSION = 2

DEFAULT_CAPACITY = 131_072


class Span:
    """One recorded interval.  Plain attribute bag, ``__slots__``-packed."""

    __slots__ = ("name", "depth", "start_s", "wall_s", "cpu_s", "attrs")

    def __init__(
        self,
        name: str,
        depth: int,
        start_s: float,
        wall_s: float,
        cpu_s: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.depth = depth
        self.start_s = start_s
        self.wall_s = wall_s
        self.cpu_s = cpu_s
        self.attrs = attrs

    def as_tuple(self) -> SpanTuple:
        return (self.name, self.depth, self.start_s, self.wall_s, self.cpu_s, self.attrs)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "depth": self.depth,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, depth={self.depth}, "
            f"wall_s={self.wall_s:.6f}, attrs={self.attrs!r})"
        )


class _SpanHandle:
    """Context manager for one open span; records into the tracer on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start", "_cpu0")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        tracer._depth += 1
        self._start = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        wall = time.perf_counter() - self._start
        cpu = time.process_time() - self._cpu0
        tracer = self._tracer
        tracer._depth -= 1
        tracer._record(
            Span(
                self._name,
                tracer._depth,
                self._start - tracer._epoch,
                wall,
                cpu,
                self._attrs,
            )
        )


class _NullHandle:
    """Shared no-op handle returned by the null tracer."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_HANDLE = _NullHandle()


class Tracer:
    """Span recorder with a bounded ring buffer.

    ``capacity`` bounds memory: once full, the *oldest* spans are
    overwritten and counted in :attr:`dropped` (and surfaced as
    ``spans_dropped`` in run-reports, so truncation is never silent).
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buf: List[Span] = []
        self._next = 0
        self.dropped = 0
        self._depth = 0
        self._epoch = time.perf_counter()
        # The wall-clock instant matching self._epoch: span start offsets
        # map onto one shared timeline as epoch_unix + start_s, which is
        # how cross-process payloads align at import time.  Wall clock is
        # volatile by the determinism contract (this module is inside
        # repro/obs/, the REPRO103-exempt zone).
        self._epoch_unix = time.time()

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return self._depth

    def _record(self, span: Span) -> None:
        if len(self._buf) < self.capacity:
            self._buf.append(span)
        else:
            self._buf[self._next] = span
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1

    def trace(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a span: ``with tracer.trace("phase", key=value): ...``."""
        return _SpanHandle(self, name, attrs)

    def add_span(
        self, name: str, wall_s: float, cpu_s: float = 0.0, **attrs: Any
    ) -> None:
        """Record a pre-timed *leaf* span at the current nesting depth.

        For sites that time manually (e.g. around a block with multiple
        exits) and must not pay the context-manager protocol.
        """
        self._record(
            Span(
                name,
                self._depth,
                time.perf_counter() - self._epoch - wall_s,
                wall_s,
                cpu_s,
                attrs,
            )
        )

    def spans(self) -> List[Span]:
        """Recorded spans, oldest first (ring wrap accounted for)."""
        if self._next == 0:
            return list(self._buf)
        return self._buf[self._next :] + self._buf[: self._next]

    def last_span(self) -> Optional[Span]:
        if not self._buf:
            return None
        return self._buf[self._next - 1]

    def clear(self) -> None:
        self._buf = []
        self._next = 0
        self.dropped = 0
        self._depth = 0
        self._epoch = time.perf_counter()
        self._epoch_unix = time.time()

    # ------------------------------------------------------------------
    # Cross-process shipping
    # ------------------------------------------------------------------
    def export_spans(self) -> Tuple[List[SpanTuple], int]:
        """``(span tuples, dropped)`` in record order — picklable."""
        return [s.as_tuple() for s in self.spans()], self.dropped

    def export_payload(self, process: Optional[str] = None) -> Dict[str, Any]:
        """The v2 trace-context payload: spans plus this tracer's origin.

        ``process`` labels the exporting process (``"shard3"``,
        ``"chunk0"``); :meth:`import_spans` stamps it onto every imported
        span as a ``proc`` attribute, which is what gives the multi-lane
        timeline and the attribution analysis their lanes.
        ``epoch_unix`` is the wall-clock instant of this tracer's time
        origin, so the importer can place the spans on *its* clock by
        shifting with the epoch difference instead of pretending they
        happened at merge time.
        """
        spans, dropped = self.export_spans()
        return {
            "version": PAYLOAD_VERSION,
            "process": process,
            "epoch_unix": self._epoch_unix,
            "spans": spans,
            "dropped": dropped,
        }

    def import_spans(self, payload: Any, rebase: bool = True) -> None:
        """Merge spans exported elsewhere (a worker, a nested observer).

        Depths are offset by the current open depth, so imported spans
        nest under whatever span is open at merge time; the exit-order
        invariant is preserved because the open parent's own record is
        appended later.

        Two payload formats are accepted.  The legacy
        ``(span tuples, dropped)`` pair rebases start offsets onto "now"
        (``rebase=False`` keeps the foreign offsets verbatim).  A
        :meth:`export_payload` dict *aligns* instead: the exporter's
        ``epoch_unix`` anchors its offsets onto this tracer's timeline,
        so concurrent shard/worker spans land where they actually ran,
        and the payload's ``process`` label is stamped on every span as
        a ``proc`` attribute.  Start times stay volatile either way;
        names, attributes and nesting stay deterministic.
        """
        proc: Optional[str] = None
        if isinstance(payload, dict):
            spans = payload["spans"]
            dropped = payload["dropped"]
            proc = payload.get("process")
            shift = payload["epoch_unix"] - self._epoch_unix
        else:
            spans, dropped = payload
            shift = 0.0
            if rebase and spans:
                shift = (time.perf_counter() - self._epoch) - spans[0][2]
        self.dropped += dropped
        if not spans:
            return
        offset = self._depth
        for name, depth, start_s, wall_s, cpu_s, attrs in spans:
            if proc is not None:
                attrs = dict(attrs)
                attrs.setdefault("proc", proc)
            self._record(
                Span(name, depth + offset, start_s + shift, wall_s, cpu_s, attrs)
            )


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Hot paths check ``tracer.enabled`` (one attribute lookup); coarse
    paths may call :meth:`trace` / :meth:`add_span` directly and pay one
    method call.
    """

    enabled = False
    dropped = 0
    capacity = 0
    depth = 0

    def trace(self, name: str, **attrs: Any) -> _NullHandle:
        return _NULL_HANDLE

    def add_span(
        self, name: str, wall_s: float, cpu_s: float = 0.0, **attrs: Any
    ) -> None:
        pass

    def spans(self) -> List[Span]:
        return []

    def last_span(self) -> None:
        return None

    def clear(self) -> None:
        pass

    def export_spans(self) -> Tuple[List[SpanTuple], int]:
        return [], 0

    def export_payload(self, process: Optional[str] = None) -> Dict[str, Any]:
        return {
            "version": PAYLOAD_VERSION,
            "process": process,
            "epoch_unix": 0.0,
            "spans": [],
            "dropped": 0,
        }

    def import_spans(self, payload: Any, rebase: bool = True) -> None:
        pass


NULL_TRACER = NullTracer()


# ----------------------------------------------------------------------
# Ambient observation (process-global; workers install their own)
# ----------------------------------------------------------------------
_CURRENT_TRACER: Any = NULL_TRACER
_CURRENT_METRICS: Any = None


def current_tracer() -> Any:
    """The ambient tracer (the null tracer unless :func:`observe` is active)."""
    return _CURRENT_TRACER


def current_metrics() -> Any:
    """The ambient metrics registry, or ``None``."""
    return _CURRENT_METRICS


def reset_ambient() -> None:
    """Reset the ambient observer slots to their import-time defaults.

    Worker bootstraps call this so forked pool workers never observe
    through a tracer/metrics pair inherited from the coordinator
    (fork-inheritance hygiene, REPRO307): workers capture through
    explicit task-local observers whose payloads merge back in
    submission order.
    """
    global _CURRENT_TRACER, _CURRENT_METRICS
    _CURRENT_TRACER = NULL_TRACER
    _CURRENT_METRICS = None


class _Observation:
    """Context manager installing an ambient tracer/metrics pair."""

    __slots__ = ("tracer", "metrics", "_prev")

    def __init__(self, tracer: Any, metrics: Any) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics

    def __enter__(self) -> "_Observation":
        global _CURRENT_TRACER, _CURRENT_METRICS
        self._prev = (_CURRENT_TRACER, _CURRENT_METRICS)
        _CURRENT_TRACER = self.tracer
        _CURRENT_METRICS = self.metrics
        return self

    def __exit__(self, *exc_info: Any) -> None:
        global _CURRENT_TRACER, _CURRENT_METRICS
        _CURRENT_TRACER, _CURRENT_METRICS = self._prev


def observe(tracer: Any = None, metrics: Any = None) -> _Observation:
    """Install ``tracer``/``metrics`` as the ambient observers.

    ::

        tracer, registry = Tracer(), MetricsRegistry()
        with observe(tracer, registry):
            dcc_schedule(...)   # picks the pair up ambiently
    """
    return _Observation(tracer, metrics)


def traced(
    name: Optional[str] = None, **attrs: Any
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator: wrap each call of ``fn`` in a span on the ambient tracer.

    ::

        @traced("analysis.prepare", layer="analysis")
        def prepare(...): ...

    When the ambient tracer is disabled the wrapper costs one global
    lookup and a branch.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        span_name = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            tracer = _CURRENT_TRACER
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.trace(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate

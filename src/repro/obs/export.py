"""Trace/metrics export: JSONL traces, run-reports, profile trees.

Three consumers, one span stream:

* :func:`write_trace_jsonl` — the raw spans, one JSON object per line,
  headed by a schema line (machine processing, flame tooling).
* :func:`build_run_report` — a deterministic, schema-versioned JSON
  document combining per-phase time aggregates with the metrics
  registry.  Reports merge into shared JSON files by name with
  :func:`merge_json_entry` — the same convention ``BENCH_kernel.json``
  uses — and :func:`strip_volatile` removes every wall-clock field so
  reports from runs at different worker counts (or on different
  machines) can be compared for determinism.
* :func:`profile_summary` — a human-readable tree (per-phase
  inclusive/exclusive wall time, call counts, top-N hottest spans).

Schema stability is a test target: :func:`validate_run_report` is the
single source of truth for what a v1 report must contain, and CI fails
on drift.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.tracer import Span, Tracer

RUN_REPORT_SCHEMA = "repro.run_report/v1"
TRACE_SCHEMA = "repro.trace/v1"

#: ``meta`` keys that describe the execution environment rather than the
#: computation — stripped (with every wall/cpu field) before determinism
#: comparisons.
VOLATILE_META_KEYS = frozenset(
    {"wall_s", "cpu_s", "workers", "cpu_count", "hostname", "created", "python"}
)


class SchemaError(ValueError):
    """A run-report failed schema validation."""


# ----------------------------------------------------------------------
# Phase aggregation
# ----------------------------------------------------------------------
def phase_aggregates(spans: Sequence[Span]) -> Dict[str, Dict[str, Any]]:
    """Per-name inclusive/exclusive time and call counts.

    Exclusive time uses the exit-order nesting invariant: children are
    recorded before their parent, so a per-depth accumulator of child
    inclusive time is exact for properly nested streams.
    """
    out: Dict[str, Dict[str, Any]] = {}
    child_wall: Dict[int, float] = {}
    for span in spans:
        nested = child_wall.pop(span.depth + 1, 0.0)
        child_wall[span.depth] = child_wall.get(span.depth, 0.0) + span.wall_s
        entry = out.get(span.name)
        if entry is None:
            entry = out[span.name] = {
                "calls": 0,
                "wall_s": 0.0,
                "exclusive_s": 0.0,
                "cpu_s": 0.0,
            }
        entry["calls"] += 1
        entry["wall_s"] += span.wall_s
        entry["exclusive_s"] += max(0.0, span.wall_s - nested)
        entry["cpu_s"] += span.cpu_s
    for entry in out.values():
        for key in ("wall_s", "exclusive_s", "cpu_s"):
            entry[key] = round(entry[key], 6)
    return {name: out[name] for name in sorted(out)}


# ----------------------------------------------------------------------
# JSONL trace export
# ----------------------------------------------------------------------
def write_trace_jsonl(tracer: Tracer, path: str) -> int:
    """Write the tracer's spans as JSON lines; returns the span count.

    The first line is a header record carrying the schema tag and the
    drop count; every following line is one span
    (``name/depth/start_s/wall_s/cpu_s/attrs``).
    """
    spans = tracer.spans()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {"schema": TRACE_SCHEMA, "spans": len(spans), "dropped": tracer.dropped},
                sort_keys=True,
            )
            + "\n"
        )
        for span in spans:
            record = span.as_dict()
            record["start_s"] = round(record["start_s"], 6)
            record["wall_s"] = round(record["wall_s"], 6)
            record["cpu_s"] = round(record["cpu_s"], 6)
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(spans)


def read_trace_jsonl(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """``(header, span records)`` from a :func:`write_trace_jsonl` file."""
    with open(path, encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    if not lines or lines[0].get("schema") != TRACE_SCHEMA:
        raise SchemaError(f"{path} is not a {TRACE_SCHEMA} trace")
    return lines[0], lines[1:]


# ----------------------------------------------------------------------
# Run reports
# ----------------------------------------------------------------------
def build_run_report(
    name: str,
    tracer: Tracer,
    metrics: Optional[Any] = None,
    meta: Optional[Dict[str, Any]] = None,
    attribution: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A schema-versioned report of one run: phases + metrics + meta.

    ``attribution`` (a ``repro.attribution/v1`` document from
    :func:`repro.obs.attribution.attribute_spans`) is attached under an
    ``attribution`` key only when provided, so reports without the
    analysis keep the exact v1 key set.

    Deterministic at fixed seeds apart from wall/cpu fields and the
    volatile ``meta`` keys — see :func:`strip_volatile`.
    """
    report = {
        "schema": RUN_REPORT_SCHEMA,
        "name": name,
        "meta": dict(meta) if meta else {},
        "phases": phase_aggregates(tracer.spans()),
        "metrics": metrics.as_dict() if metrics is not None else {},
        "spans_dropped": tracer.dropped,
    }
    if attribution is not None:
        report["attribution"] = attribution
    return report


def write_run_report(report: Dict[str, Any], path: str) -> None:
    """Serialise deterministically (sorted keys, stable layout)."""
    Path(path).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_run_report(path: str) -> Dict[str, Any]:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def merge_json_entry(path: str | Path, name: str, entry: Dict[str, Any]) -> None:
    """Merge ``entry`` under ``name`` in a shared JSON file.

    The ``BENCH_kernel.json`` convention: entries merge by name, so
    partial runs never wipe other entries; unreadable files start fresh.
    """
    target = Path(path)
    data: Dict[str, Any] = {}
    if target.exists():
        try:
            data = json.loads(target.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            data = {}
    data[name] = entry
    target.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def validate_run_report(report: Dict[str, Any]) -> None:
    """Raise :class:`SchemaError` unless ``report`` is a valid v1 report."""
    if not isinstance(report, dict):
        raise SchemaError("report must be a JSON object")
    if report.get("schema") != RUN_REPORT_SCHEMA:
        raise SchemaError(
            f"schema must be {RUN_REPORT_SCHEMA!r}, got {report.get('schema')!r}"
        )
    for key, types in (
        ("name", str),
        ("meta", dict),
        ("phases", dict),
        ("metrics", dict),
        ("spans_dropped", int),
    ):
        if key not in report:
            raise SchemaError(f"missing required key {key!r}")
        if not isinstance(report[key], types):
            raise SchemaError(f"key {key!r} must be {types.__name__}")
    for phase, entry in report["phases"].items():
        if not isinstance(entry, dict):
            raise SchemaError(f"phase {phase!r} must be an object")
        for field in ("calls", "wall_s", "exclusive_s", "cpu_s"):
            if not isinstance(entry.get(field), (int, float)):
                raise SchemaError(f"phase {phase!r} missing numeric {field!r}")
    for name, metric in report["metrics"].items():
        if not isinstance(metric, dict):
            raise SchemaError(f"metric {name!r} must be an object")
        kind = metric.get("type")
        if kind == "counter":
            if not isinstance(metric.get("value"), int):
                raise SchemaError(f"counter {name!r} missing integer value")
        elif kind == "gauge":
            if "value" not in metric:
                raise SchemaError(f"gauge {name!r} missing value")
        elif kind == "histogram":
            if not isinstance(metric.get("count"), int):
                raise SchemaError(f"histogram {name!r} missing integer count")
            if not isinstance(metric.get("volatile"), bool):
                raise SchemaError(f"histogram {name!r} missing volatile flag")
        else:
            raise SchemaError(f"metric {name!r} has unknown type {kind!r}")
    if "attribution" in report:
        attribution = report["attribution"]
        if not isinstance(attribution, dict):
            raise SchemaError("attribution must be an object")
        from repro.obs.attribution import ATTRIBUTION_SCHEMA

        if attribution.get("schema") != ATTRIBUTION_SCHEMA:
            raise SchemaError(
                "attribution schema must be "
                f"{ATTRIBUTION_SCHEMA!r}, got {attribution.get('schema')!r}"
            )
        if not isinstance(attribution.get("runs"), list):
            raise SchemaError("attribution missing runs list")
        if not isinstance(attribution.get("totals"), dict):
            raise SchemaError("attribution missing totals object")


def strip_volatile(report: Dict[str, Any]) -> Dict[str, Any]:
    """A deep copy with every nondeterministic field removed.

    Drops wall/cpu aggregates from phases (call counts survive), value
    statistics from volatile histograms (observation counts survive),
    and the environment keys of ``meta`` (:data:`VOLATILE_META_KEYS`).
    Two runs of the same computation at the same seeds must compare
    equal after this strip — that equality is tested property-style for
    serial vs fanned-out execution.
    """
    out = copy.deepcopy(report)
    out["meta"] = {
        key: value
        for key, value in out.get("meta", {}).items()
        if key not in VOLATILE_META_KEYS
    }
    out["phases"] = {
        phase: {"calls": entry["calls"]}
        for phase, entry in out.get("phases", {}).items()
    }
    metrics = out.get("metrics", {})
    for name, metric in metrics.items():
        if metric.get("type") == "histogram" and metric.get("volatile"):
            metrics[name] = {
                "type": "histogram",
                "count": metric["count"],
                "volatile": True,
            }
    if "attribution" in out:
        out["attribution"] = _strip_timing(out["attribution"])
    return out


def _strip_timing(value: Any) -> Any:
    """Recursively drop seconds-valued and environment-shaped fields.

    Applied to the ``attribution`` block: every ``*_s`` key and the
    ``workers`` count are volatile, while the structural skeleton
    (round/sub-round/shard indices, halo row and byte counts) is the
    deterministic part the worker-invariance property compares.
    """
    if isinstance(value, dict):
        return {
            key: _strip_timing(entry)
            for key, entry in value.items()
            if not key.endswith("_s") and key not in VOLATILE_META_KEYS
        }
    if isinstance(value, list):
        return [_strip_timing(entry) for entry in value]
    return value


# ----------------------------------------------------------------------
# Human profile tree
# ----------------------------------------------------------------------
def _build_tree(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """Reconstruct the nesting forest from the exit-ordered stream."""
    pending: Dict[int, List[Dict[str, Any]]] = {}
    min_depth = None
    for span in spans:
        node = {
            "name": span.name,
            "wall_s": span.wall_s,
            "cpu_s": span.cpu_s,
            "children": pending.pop(span.depth + 1, []),
        }
        pending.setdefault(span.depth, []).append(node)
        if min_depth is None or span.depth < min_depth:
            min_depth = span.depth
    if min_depth is None:
        return []
    # Orphans deeper than the shallowest recorded depth (open parents,
    # ring-dropped heads) are promoted to roots rather than lost.
    roots: List[Dict[str, Any]] = []
    for depth in sorted(pending):
        roots.extend(pending[depth])
    return roots


def _aggregate_children(nodes: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Group sibling nodes by name, summing times and call counts."""
    grouped: Dict[str, Dict[str, Any]] = {}
    for node in nodes:
        entry = grouped.get(node["name"])
        if entry is None:
            entry = grouped[node["name"]] = {
                "name": node["name"],
                "calls": 0,
                "wall_s": 0.0,
                "child_s": 0.0,
                "children": [],
            }
        entry["calls"] += 1
        entry["wall_s"] += node["wall_s"]
        entry["child_s"] += sum(c["wall_s"] for c in node["children"])
        entry["children"].extend(node["children"])
    out = list(grouped.values())
    out.sort(key=lambda e: -e["wall_s"])
    for entry in out:
        entry["children"] = _aggregate_children(entry["children"])
    return out


def profile_summary(tracer: Tracer, top: int = 10, max_depth: int = 6) -> str:
    """The ``--profile`` rendering: phase tree + hottest individual spans."""
    spans = tracer.spans()
    if not spans:
        return "profile: no spans recorded"
    lines: List[str] = ["profile (inclusive / exclusive wall seconds):"]

    def render(entries: List[Dict[str, Any]], indent: int) -> None:
        if indent >= max_depth:
            return
        for entry in entries:
            exclusive = max(0.0, entry["wall_s"] - entry["child_s"])
            lines.append(
                f"  {'  ' * indent}{entry['name']:<32} "
                f"{entry['wall_s']:9.4f} / {exclusive:9.4f}  "
                f"x{entry['calls']}"
            )
            render(entry["children"], indent + 1)

    render(_aggregate_children(_build_tree(spans)), 0)
    hottest = sorted(spans, key=lambda s: -s.wall_s)[:top]
    lines.append(f"top {len(hottest)} spans by wall time:")
    for span in hottest:
        attrs = ""
        if span.attrs:
            attrs = " " + ", ".join(
                f"{k}={v}" for k, v in sorted(span.attrs.items())
            )
        lines.append(f"  {span.wall_s:9.4f}s  {span.name}{attrs}")
    if tracer.dropped:
        lines.append(f"  ({tracer.dropped} oldest spans dropped by the ring buffer)")
    return "\n".join(lines)

"""Static bound envelopes and the runtime cross-check that consumes them.

``repro-bounds`` (:mod:`repro.checks.bounds`) proves radius and traffic
bounds *statically* and emits them as a :data:`MANIFEST_SCHEMA` manifest:
a mapping from meter names (``halo.rows_per_round``,
``messages.priority.sent``, ``bfs.max_depth``, ...) to symbolic bound
expressions over shape parameters (``n``, ``delta``, ``tau``, ``k``,
``m``, ``shards``, ``halo_members``, ...).  This module is the *runtime*
half of that contract: evaluate each bound for a concrete run's
parameters and assert every measured meter lies inside its envelope,
reporting the margins.

Everything here is pure stdlib and deterministic — the cross-check runs
inside CI's sharded fig2 smoke and its report must be byte-stable.

Bound-expression grammar (DESIGN.md section 14): integer literals,
parameter names, ``+ - * //``, ``min(...)``/``max(...)`` calls, and
parentheses.  Nothing else evaluates — an unknown name or node is a
:class:`SchemaError` listing the parameters that *are* in scope, so a
manifest/params mismatch reads as a contract error, not a crash.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.export import SchemaError

MANIFEST_SCHEMA = "repro-bounds-manifest/v1"

__all__ = [
    "MANIFEST_SCHEMA",
    "EnvelopeReport",
    "EnvelopeRow",
    "check_envelope",
    "envelope_params",
    "eval_bound",
    "margins_entry",
    "max_bfs_depth_from_tracer",
    "measured_from_runtime_stats",
    "measured_from_shard_stats",
    "moore_ball_bound",
    "shape_params_from_graph",
]


def eval_bound(expr: str, env: Mapping[str, int]) -> int:
    """Evaluate a manifest bound expression over integer parameters.

    Whitelisted AST only — names resolve through ``env``, arithmetic is
    ``+ - * //`` plus ``min``/``max`` calls.  Anything else (floats,
    attribute access, comparisons, ``**``) raises :class:`SchemaError`.
    """
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError as exc:
        raise SchemaError(f"unparseable bound expression {expr!r}: {exc}")
    return _eval_node(tree.body, expr, env)


def _eval_node(node: ast.AST, expr: str, env: Mapping[str, int]) -> int:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, int) and not isinstance(node.value, bool):
            return node.value
        raise SchemaError(
            f"bound {expr!r}: only integer literals allowed, "
            f"got {node.value!r}"
        )
    if isinstance(node, ast.Name):
        if node.id not in env:
            known = ", ".join(sorted(env))
            raise SchemaError(
                f"bound {expr!r}: unknown parameter {node.id!r} "
                f"(in scope: {known})"
            )
        return int(env[node.id])
    if isinstance(node, ast.BinOp):
        left = _eval_node(node.left, expr, env)
        right = _eval_node(node.right, expr, env)
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.FloorDiv):
            if right == 0:
                raise SchemaError(f"bound {expr!r}: division by zero")
            return left // right
        raise SchemaError(
            f"bound {expr!r}: operator {type(node.op).__name__} not allowed"
        )
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return -_eval_node(node.operand, expr, env)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("min", "max")
        and not node.keywords
    ):
        values = [_eval_node(arg, expr, env) for arg in node.args]
        if not values:
            raise SchemaError(f"bound {expr!r}: empty {node.func.id}() call")
        return min(values) if node.func.id == "min" else max(values)
    raise SchemaError(
        f"bound {expr!r}: node {type(node).__name__} not in the "
        "envelope grammar (int literals, names, + - * //, min/max)"
    )


def moore_ball_bound(n: int, delta: int, radius: int) -> int:
    """Closed-ball size bound: ``min(n, Moore(delta, radius))``.

    In a graph of maximum degree ``delta``, a closed ``radius``-ball has
    at most ``1 + delta * ((delta - 1)^radius - 1) / (delta - 2)``
    vertices (the Moore bound), and never more than ``n``.
    """
    if radius <= 0:
        return min(n, 1)
    if delta <= 1:
        return min(n, 1 + delta)
    if delta == 2:
        return min(n, 1 + 2 * radius)
    moore = 1 + delta * (((delta - 1) ** radius - 1) // (delta - 2))
    return min(n, moore)


def envelope_params(params: Mapping[str, int]) -> Dict[str, int]:
    """Complete a parameter set with the derived ball-size bounds.

    Callers supply the measured shape parameters (``n``, ``delta``,
    ``tau``, ``k``, ``m``, ``shards``, ``rounds``, ``subrounds``,
    ``halo_members``, ``deletions``, ...); this derives ``ball_k`` and
    ``ball_m`` via :func:`moore_ball_bound` when the inputs are present.
    """
    env = {name: int(value) for name, value in params.items()}
    n = env.get("n")
    delta = env.get("delta")
    if n is not None and delta is not None:
        for sym in ("k", "m"):
            radius = env.get(sym)
            if radius is not None and f"ball_{sym}" not in env:
                env[f"ball_{sym}"] = moore_ball_bound(n, delta, radius)
    return env


@dataclass
class EnvelopeRow:
    """One meter checked against its static bound."""

    meter: str
    measured: int
    bound_expr: str
    bound_value: int
    ok: bool

    @property
    def margin(self) -> int:
        """Headroom left under the bound (negative = violation)."""
        return self.bound_value - self.measured

    def as_dict(self) -> Dict[str, Any]:
        return {
            "meter": self.meter,
            "measured": self.measured,
            "bound_expr": self.bound_expr,
            "bound_value": self.bound_value,
            "margin": self.margin,
            "ok": self.ok,
        }


@dataclass
class EnvelopeReport:
    """Result of checking every measured meter against the manifest."""

    rows: List[EnvelopeRow] = field(default_factory=list)
    #: manifest meters with no measured value (reported, never fatal:
    #: a smoke run may legitimately not exercise every meter)
    unmeasured: List[str] = field(default_factory=list)
    #: measured meters with no manifest envelope (reported so a new
    #: meter cannot silently dodge certification)
    uncovered: List[str] = field(default_factory=list)
    params: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    @property
    def violations(self) -> List[EnvelopeRow]:
        return [row for row in self.rows if not row.ok]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "ok": self.ok,
            "params": dict(sorted(self.params.items())),
            "rows": [row.as_dict() for row in self.rows],
            "unmeasured": sorted(self.unmeasured),
            "uncovered": sorted(self.uncovered),
        }

    def format_diff(self) -> str:
        """Readable pass/FAIL table, one meter per line.

        This is the text a failing CI gate prints, so it must answer the
        three questions on its own: which meter, how far outside, and
        what the bound evaluated from.
        """
        lines: List[str] = []
        width = max((len(row.meter) for row in self.rows), default=5)
        for row in self.rows:
            status = "ok  " if row.ok else "FAIL"
            lines.append(
                f"{status} {row.meter:<{width}}  measured={row.measured}"
                f"  bound={row.bound_value}  margin={row.margin}"
                f"  [{row.bound_expr}]"
            )
        for meter in sorted(self.unmeasured):
            lines.append(f"--   {meter:<{width}}  (not measured this run)")
        for meter in sorted(self.uncovered):
            lines.append(
                f"??   {meter:<{width}}  (measured but no static envelope)"
            )
        if not self.ok:
            names = ", ".join(row.meter for row in self.violations)
            lines.append(
                f"envelope violated: {names} — measured value exceeds the "
                "statically certified bound (see DESIGN.md section 14)"
            )
        return "\n".join(lines)


def _manifest_envelopes(manifest: Mapping[str, Any]) -> Dict[str, str]:
    if manifest.get("format") != MANIFEST_SCHEMA:
        raise SchemaError(
            f"not a bounds manifest: format="
            f"{manifest.get('format')!r}, expected {MANIFEST_SCHEMA!r}"
        )
    envelopes = manifest.get("envelopes")
    if not isinstance(envelopes, dict):
        raise SchemaError("bounds manifest has no 'envelopes' mapping")
    out: Dict[str, str] = {}
    for meter, entry in envelopes.items():
        if isinstance(entry, str):
            out[meter] = entry
        elif isinstance(entry, dict) and isinstance(entry.get("bound"), str):
            out[meter] = entry["bound"]
        else:
            raise SchemaError(
                f"envelope for {meter!r} must be a bound expression "
                f"string (or a dict with a 'bound' key), got {entry!r}"
            )
    return out


def check_envelope(
    manifest: Mapping[str, Any],
    measured: Mapping[str, int],
    params: Mapping[str, int],
) -> EnvelopeReport:
    """Check every measured meter against its static bound.

    ``manifest`` is a ``repro-bounds-manifest/v1`` dict (as emitted by
    ``repro-bounds --manifest``), ``measured`` maps meter names to the
    run's observed values, ``params`` supplies the shape parameters the
    bound expressions mention (completed via :func:`envelope_params`).
    """
    envelopes = _manifest_envelopes(manifest)
    env = envelope_params(params)
    report = EnvelopeReport(params=env)
    for meter in sorted(envelopes):
        if meter not in measured:
            report.unmeasured.append(meter)
            continue
        value = int(measured[meter])
        bound = eval_bound(envelopes[meter], env)
        report.rows.append(
            EnvelopeRow(
                meter=meter,
                measured=value,
                bound_expr=envelopes[meter],
                bound_value=bound,
                ok=value <= bound,
            )
        )
    report.uncovered = [m for m in sorted(measured) if m not in envelopes]
    return report


# ----------------------------------------------------------------------
# Measured-meter collection helpers
# ----------------------------------------------------------------------
def measured_from_shard_stats(stats: Any) -> Dict[str, int]:
    """Halo-traffic meters from a ``ShardStats`` account.

    Peaks (not totals) are what the per-round envelopes bound; totals
    ride along for the margins artifact under distinct meter names.
    """
    return {
        "halo.rows_per_round": max(stats.halo_rows_per_round, default=0),
        "halo.bytes_per_round": max(stats.halo_bytes_per_round, default=0),
        "halo.subrounds_per_round": max(stats.subrounds_per_round, default=0),
    }


def measured_from_runtime_stats(stats: Any) -> Dict[str, int]:
    """Per-kind message-send meters from a ``RuntimeStats`` account."""
    return {
        f"messages.{kind}.sent": count
        for kind, count in sorted(stats.messages_by_kind.items())
    }


def max_bfs_depth_from_tracer(
    tracer: Any, span_name: str = "kernel.ball_bfs"
) -> Optional[int]:
    """Deepest observed ball BFS, read off the kernel's tracer spans.

    Returns ``None`` when no such span was recorded (tracing disabled or
    the packed path bypassed the per-ball spans).
    """
    depths = [
        int(span.attrs["radius"])
        for span in tracer.spans()
        if span.name == span_name and "radius" in span.attrs
    ]
    return max(depths) if depths else None


def shape_params_from_graph(graph: Any, tau: int) -> Dict[str, int]:
    """The (n, delta, tau, k, m) shape parameters of one deployment."""
    vertices = list(graph.vertices())
    delta = max((graph.degree(v) for v in vertices), default=0)
    k = -(-tau // 2)  # ceil(tau / 2) without importing repro.topology
    return {
        "n": len(vertices),
        "delta": delta,
        "tau": tau,
        "k": k,
        "m": k + 1,
    }


def margins_entry(
    report: EnvelopeReport, label: str
) -> Tuple[str, Dict[str, Any]]:
    """A ``(key, payload)`` pair for the margins artifact.

    Suitable for :func:`repro.obs.export.merge_json_entry`, so repeated
    smoke runs accumulate into one deterministic artifact.
    """
    return label, report.as_dict()

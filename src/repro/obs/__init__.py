"""Observability: structured tracing, a metrics registry, run-reports.

PR 1/2 taught the repo to *count* its work (``TopologyCounters``,
``RuntimeStats``); this subpackage records *when and where* that work
happens and exports it machine-readably:

* :mod:`repro.obs.tracer` — ring-buffered span tracer with a no-op null
  tracer as the universal default, an ambient-observer context
  (:func:`observe` / :func:`current_tracer`) and a ``@traced``
  decorator.
* :mod:`repro.obs.metrics` — named counters/gauges/histograms that
  absorb the existing accounting objects and merge associatively.
* :mod:`repro.obs.export` — JSONL traces, schema-versioned deterministic
  run-reports (``repro.run_report/v1``) and the ``--profile`` tree.
* :mod:`repro.obs.attribution` — distributed wall-clock attribution
  (``repro.attribution/v1``): per-round compute / barrier-wait / halo /
  merge lanes over the aligned cross-process span timeline.
* :mod:`repro.obs.timeline` — SVG per-round timelines and multi-lane
  shard/worker timelines through :mod:`repro.viz.svg`.
* :mod:`repro.obs.bench` — the ``repro-bench`` CLI: named benches with
  environment-fingerprinted entries and a tolerance-gated ``diff``.
* :mod:`repro.obs.envelope` — the runtime half of the ``repro-bounds``
  contract: evaluate the statically certified bound expressions for a
  concrete run and assert every measured meter stays inside, with
  margins (``repro-bounds-manifest/v1``).

See DESIGN.md sections 6 and 11 for the null-tracer contract, the
clock-alignment rules for merged worker observations and the
attribution taxonomy.
"""

from repro.obs.attribution import (
    ATTRIBUTION_SCHEMA,
    attribute_spans,
    attribution_from_tracer,
    attribution_summary,
)
from repro.obs.export import (
    RUN_REPORT_SCHEMA,
    TRACE_SCHEMA,
    VOLATILE_META_KEYS,
    SchemaError,
    build_run_report,
    load_run_report,
    merge_json_entry,
    phase_aggregates,
    profile_summary,
    read_trace_jsonl,
    strip_volatile,
    validate_run_report,
    write_run_report,
    write_trace_jsonl,
)
from repro.obs.envelope import (
    MANIFEST_SCHEMA,
    EnvelopeReport,
    EnvelopeRow,
    check_envelope,
    envelope_params,
    eval_bound,
    margins_entry,
    max_bfs_depth_from_tracer,
    measured_from_runtime_stats,
    measured_from_shard_stats,
    moore_ball_bound,
    shape_params_from_graph,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.timeline import (
    lane_timeline_from_tracer,
    render_lane_timeline,
    render_timeline,
    timeline_from_tracer,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_metrics,
    current_tracer,
    observe,
    traced,
)

__all__ = [
    "ATTRIBUTION_SCHEMA",
    "Counter",
    "EnvelopeReport",
    "EnvelopeRow",
    "Gauge",
    "Histogram",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RUN_REPORT_SCHEMA",
    "SchemaError",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "VOLATILE_META_KEYS",
    "attribute_spans",
    "attribution_from_tracer",
    "attribution_summary",
    "build_run_report",
    "check_envelope",
    "current_metrics",
    "current_tracer",
    "envelope_params",
    "eval_bound",
    "lane_timeline_from_tracer",
    "load_run_report",
    "margins_entry",
    "max_bfs_depth_from_tracer",
    "measured_from_runtime_stats",
    "measured_from_shard_stats",
    "merge_json_entry",
    "moore_ball_bound",
    "observe",
    "phase_aggregates",
    "profile_summary",
    "read_trace_jsonl",
    "render_lane_timeline",
    "render_timeline",
    "shape_params_from_graph",
    "strip_volatile",
    "timeline_from_tracer",
    "traced",
    "validate_run_report",
    "write_run_report",
    "write_trace_jsonl",
]

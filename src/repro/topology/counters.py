"""Instrumentation counters for the local-topology engine.

Every expensive primitive the engine performs — punctured-neighbourhood
BFS extraction, short-cycle-span construction, deletability verdicts —
is counted here, together with the cache events that *avoided* one.  The
counters ride on :class:`repro.core.scheduler.ScheduleResult` and
:class:`repro.runtime.stats.RuntimeStats`, so benchmarks can quantify
redundant work without profiling.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class TopologyCounters:
    """Work / cache-event accounting for :class:`LocalTopologyEngine`."""

    #: total ``deletable()`` queries answered (hits + fresh tests)
    deletability_queries: int = 0
    #: queries answered from the per-vertex verdict cache
    deletability_cache_hits: int = 0
    #: fresh deletability evaluations (neighbourhood + verdict)
    deletability_tests: int = 0
    #: ``ShortCycleSpan`` constructions actually performed
    span_computations: int = 0
    #: span verdicts served from the signature-keyed memo
    span_memo_hits: int = 0
    #: memo lookups that found nothing (verdict had to be computed)
    span_memo_misses: int = 0
    #: LRU entries this engine's inserts pushed out of the shared memo
    span_memo_evictions: int = 0
    #: k-ball BFS extractions actually performed
    ball_computations: int = 0
    #: ball requests served from the ball cache
    ball_cache_hits: int = 0
    #: vertices expanded across all engine-run BFS traversals
    bfs_expansions: int = 0
    #: cached entries dropped by dirty-region invalidation
    invalidations: int = 0

    def merge(self, other: "TopologyCounters") -> None:
        """Accumulate ``other`` into this instance."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        return (
            f"deletability: {self.deletability_queries} queries "
            f"({self.deletability_cache_hits} cached, "
            f"{self.deletability_tests} fresh) | "
            f"spans: {self.span_computations} computed, "
            f"{self.span_memo_hits} memoised "
            f"({self.span_memo_misses} misses, "
            f"{self.span_memo_evictions} evictions) | "
            f"balls: {self.ball_computations} BFS, "
            f"{self.ball_cache_hits} cached "
            f"({self.bfs_expansions} expansions) | "
            f"{self.invalidations} invalidations"
        )

"""Incremental local-topology computation shared by every coverage path.

This subpackage owns the primitive that the VPT deletability test
(Definition 5), the DCC scheduler rounds, boundary repair, lifetime
rotation and the distributed protocol all reduce to: extract a punctured
k-hop neighbourhood and decide whether short cycles span its GF(2) cycle
space.  :class:`LocalTopologyEngine` maintains that state incrementally
under vertex/edge mutation instead of recomputing it from scratch — see
``DESIGN.md`` ("The topology-engine layer") for the invalidation
invariant and the instrumentation counters.
"""

from repro.topology.counters import TopologyCounters
from repro.topology.engine import (
    LocalTopologyEngine,
    OwnedRegionError,
    punctured_deletable,
)
from repro.topology.radii import (
    flood_ttl,
    halo_radius,
    mis_separation,
    neighborhood_radius,
    stage_cutoff,
)
from repro.topology.signature import SpanMemo, SubgraphSignature, graph_signature

__all__ = [
    "LocalTopologyEngine",
    "OwnedRegionError",
    "SpanMemo",
    "SubgraphSignature",
    "TopologyCounters",
    "flood_ttl",
    "graph_signature",
    "halo_radius",
    "mis_separation",
    "neighborhood_radius",
    "punctured_deletable",
    "stage_cutoff",
]

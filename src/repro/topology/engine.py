"""The incremental local-topology engine.

Every coverage decision in the paper reduces to one primitive: extract a
punctured k-hop neighbourhood and decide whether short cycles span its
GF(2) cycle space (Definition 5 / Theorem 4).  The seed code recomputed
that primitive independently at four call sites; this engine owns it
once, incrementally:

* **k-ball extraction with dirty-region invalidation.**  Hop balls are
  cached per ``(vertex, radius)`` with a reverse *owner index* (member
  vertex -> cached balls containing it).  A mutation touching vertex
  ``w`` can only change balls that already contain ``w`` — the k-ball
  locality invariant the seed's ``DeletabilityCache`` exploited, here
  generalised to every radius and to edge mutations — so invalidation is
  an index lookup, not a BFS.
* **Signature-memoised span verdicts.**  The deletability verdict is a
  pure function of ``(tau, punctured subgraph)``; verdicts are memoised
  on a canonical subgraph signature in a :class:`SpanMemo` that can be
  shared across engines (e.g. between rotation shifts, or between the
  per-node engines of the distributed protocol).
* **Copy-free neighbourhood graphs.**  Neighbourhood subgraphs are
  :class:`~repro.network.graph.SubgraphView` objects over the live
  graph, so the hot loop no longer pays ``induced_subgraph`` full-copy
  costs.
* **Instrumentation.**  All of the above is counted in
  :class:`TopologyCounters`, surfaced on ``ScheduleResult`` and
  ``RuntimeStats``.

The engine owns its graph: all mutations must go through
:meth:`delete_vertex` / :meth:`delete_edge` / :meth:`add_edge` /
:meth:`add_vertex`.  Out-of-band mutations are detected via the graph's
version counter and answered with a wholesale cache flush, so results
stay correct even then.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.checks.sanitizer import current_sanitizer
from repro.cycles.batch import numpy_available, span_verdict_batch
from repro.cycles.horton import ShortCycleSpan
from repro.network.graph import NetworkGraph
from repro.obs.tracer import NULL_TRACER
from repro.topology.counters import TopologyCounters
from repro.topology.radii import neighborhood_radius
from repro.topology.signature import SpanMemo

BallKey = Tuple[int, int]  # (center, radius)


class OwnedRegionError(RuntimeError):
    """A verdict was requested outside an engine's owned region.

    Raised by engines constructed with ``owned=...`` (the shard runtime):
    a shard may *traverse* its halo band freely — balls and separation
    probes legitimately reach into it — but a deletability verdict for a
    vertex it does not own would be computed on a partition that is not
    guaranteed to contain that vertex's full k-ball, so it must come from
    the owner via the halo exchange instead.
    """


class LocalTopologyEngine:
    """Incremental k-ball extraction and deletability testing.

    Parameters
    ----------
    graph:
        The graph the engine operates on.  *Owned* by the engine — apply
        mutations through the engine so caches stay consistent (direct
        mutations are tolerated but flush every cache).
    tau:
        The confine size; fixes the test radius ``k = ceil(tau/2)``.
    counters:
        Optional shared :class:`TopologyCounters` (several engines can
        aggregate into one, as the distributed protocol's per-node views
        do).
    span_memo:
        Optional shared :class:`SpanMemo` of signature-keyed verdicts.
    cache_balls / cache_verdicts / memoize_spans / use_kernel:
        Feature switches.  Benchmarks switch them off to reproduce the
        seed's recompute-from-scratch cost model (and, for
        ``use_kernel``, the PR 1 dict-based cost model) against
        identical schedules.  ``cache_balls`` defaults to the *inverse*
        of ``use_kernel``: a kernel BFS over slot arrays is cheaper than
        the ball cache's owner-index bookkeeping plus invalidation
        churn, so kernel engines recompute balls and fall back to the
        BFS-eviction policy for verdict invalidation, while dict-based
        engines keep the cache.  ``memoize_spans`` defaults to whether a
        *shared* ``span_memo`` was supplied (always on for dict-based
        engines): a private memo on a kernel engine pays the signature
        scan on every fresh verdict and almost never hits, because the
        per-vertex verdict cache already absorbs exact repeats.  Pass
        explicit values to override either default.
    owned:
        Optional owned-region restriction (the shard runtime).  When
        set, :meth:`deletable` refuses vertices outside the set with
        :class:`OwnedRegionError`; traversal queries (balls, separation
        probes) stay unrestricted, mirroring the halo-band contract.
    """

    def __init__(
        self,
        graph: NetworkGraph,
        tau: int,
        *,
        counters: Optional[TopologyCounters] = None,
        span_memo: Optional[SpanMemo] = None,
        cache_balls: Optional[bool] = None,
        cache_verdicts: bool = True,
        memoize_spans: Optional[bool] = None,
        use_kernel: bool = True,
        tracer=None,
        metrics=None,
        owned: Optional[FrozenSet[int]] = None,
    ) -> None:
        self.graph = graph
        self.tau = tau
        self.owned = owned
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.radius = neighborhood_radius(tau)
        self.counters = counters if counters is not None else TopologyCounters()
        self.span_memo = span_memo if span_memo is not None else SpanMemo()
        self.cache_balls = (not use_kernel) if cache_balls is None else cache_balls
        self.cache_verdicts = cache_verdicts
        if memoize_spans is None:
            memoize_spans = span_memo is not None or not use_kernel
        self.memoize_spans = memoize_spans
        self.use_kernel = use_kernel
        self._kernel = graph.csr() if use_kernel else None
        if self._kernel is not None and self.tracer.enabled:
            self._kernel.tracer = self.tracer
        self._balls: Dict[BallKey, FrozenSet[int]] = {}
        self._owners: Dict[int, Set[BallKey]] = {}
        self._verdicts: Dict[int, bool] = {}
        self._full_span: Optional[ShortCycleSpan] = None
        self._full_span_version = -1
        self._version = graph.version

    @property
    def kernel(self):
        """The CSR mirror (``None`` on dict-only engines), cache-synced.

        Callers running radius-bounded sweeps directly on the mirror
        (the wave-MIS propagation) go through this accessor so a
        behind-our-back graph mutation rebuilds the mirror first.
        """
        self._sync()
        return self._kernel

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def set_observers(self, tracer=None, metrics=None) -> None:
        """Attach a tracer and/or metrics registry after construction.

        Timing is recorded only while ``tracer.enabled`` (or a registry
        is attached): the disabled path pays two attribute lookups per
        fresh verdict.  The tracer is propagated to the kernel mirror so
        its ball-BFS and span-verdict spans nest under the engine's.
        """
        if tracer is not None:
            self.tracer = tracer
        if metrics is not None:
            self.metrics = metrics
        if self._kernel is not None:
            self._kernel.tracer = self.tracer if self.tracer.enabled else None

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Flush everything if the graph was mutated behind our back."""
        if self.graph.version != self._version:
            self.invalidate_all()

    def invalidate_all(self) -> None:
        """Drop every cached ball and verdict (correct but expensive)."""
        self.counters.invalidations += len(self._balls) + len(self._verdicts)
        self._balls.clear()
        self._owners.clear()
        self._verdicts.clear()
        if self.use_kernel:
            self._kernel = self.graph.csr()
            if self.tracer.enabled:
                self._kernel.tracer = self.tracer
        self._version = self.graph.version

    def _invalidate_member(self, w: int) -> None:
        """Drop every cached ball containing ``w`` (and its verdicts).

        This is the dirty-region invariant: a mutation at ``w`` can only
        affect hop balls that already contain ``w`` — removing ``w`` (or
        an edge at ``w``) cannot create or destroy paths of length
        ``<= r`` from centers farther than ``r`` away, and a new edge at
        ``w`` only shortens paths that pass through ``w``.
        """
        keys = self._owners.pop(w, None)
        if not keys:
            # A verdict can exist without its ball being cached (ball
            # caching switched off); the center's own verdict still dies.
            if self._verdicts.pop(w, None) is not None:
                self.counters.invalidations += 1
            return
        for key in keys:
            ball = self._balls.pop(key, None)
            if ball is None:
                continue
            self.counters.invalidations += 1
            center, radius = key
            for member in ball:
                if member != w:
                    owned = self._owners.get(member)
                    if owned is not None:
                        owned.discard(key)
            if radius == self.radius:
                if self._verdicts.pop(center, None) is not None:
                    self.counters.invalidations += 1
        if self._verdicts.pop(w, None) is not None:
            self.counters.invalidations += 1

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def delete_vertex(self, v: int) -> Set[int]:
        """Remove ``v`` in place; invalidates only the dirty region."""
        self._sync()
        if not self.cache_balls and self._verdicts:
            # Without an owner index, fall back to the seed's policy:
            # BFS the k-ball of the deleted vertex and evict its verdicts.
            dist = self.graph.bfs_distances(v, cutoff=self.radius)
            self.counters.ball_computations += 1
            self.counters.bfs_expansions += len(dist)
            for u in dist:
                if self._verdicts.pop(u, None) is not None:
                    self.counters.invalidations += 1
        self._invalidate_member(v)
        if self.use_kernel:
            nbrs = self._kernel.delete_vertex(v)
        else:
            nbrs = self.graph.remove_vertex(v)
        self._version = self.graph.version
        return nbrs

    def delete_edge(self, u: int, v: int) -> None:
        self._sync()
        if not self.cache_balls and self._verdicts:
            self._verdicts.clear()
        self._invalidate_member(u)
        self._invalidate_member(v)
        if self.use_kernel:
            self._kernel.delete_edge(u, v)
        else:
            self.graph.remove_edge(u, v)
        self._version = self.graph.version

    def add_edge(self, u: int, v: int) -> None:
        self._sync()
        if not self.cache_balls and self._verdicts:
            self._verdicts.clear()
        self._invalidate_member(u)
        self._invalidate_member(v)
        if self.use_kernel:
            self._kernel.add_edge(u, v)
        else:
            self.graph.add_edge(u, v)
        self._version = self.graph.version

    def add_vertex(self, v: int) -> None:
        # A fresh isolated vertex changes no distances: nothing to flush.
        self._sync()
        if self.use_kernel:
            self._kernel.add_vertex(v)
        else:
            self.graph.add_vertex(v)
        self._version = self.graph.version

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def ball(self, v: int, radius: Optional[int] = None) -> FrozenSet[int]:
        """Vertices within ``radius`` hops of ``v`` — including ``v``.

        Cached with owner-index invalidation; ``radius`` defaults to the
        engine's deletability radius ``k``.
        """
        self._sync()
        if radius is None:
            r = self.radius
        elif radius < 0:
            raise ValueError("radius must be non-negative")
        else:
            r = radius
        key = (v, r)
        cached = self._balls.get(key)
        if cached is not None:
            self.counters.ball_cache_hits += 1
            return cached
        if self.use_kernel:
            ball = self._kernel.ball_ids(v, r)
        else:
            ball = frozenset(self.graph.bfs_distances(v, cutoff=r))
        self.counters.ball_computations += 1
        self.counters.bfs_expansions += len(ball)
        sanitizer = current_sanitizer()
        if sanitizer is not None:
            sanitizer.check_ball(self.graph, v, r, ball)
        if self.cache_balls:
            self._balls[key] = ball
            for member in ball:
                self._owners.setdefault(member, set()).add(key)
        return ball

    def punctured_neighborhood(self, v: int) -> FrozenSet[int]:
        """``N^k(v)``: the k-ball of ``v`` without ``v`` itself."""
        return self.ball(v, self.radius) - {v}

    def blocked(self, v: int, radius: int, blockers: Set[int]) -> bool:
        """Does the ``radius``-ball of ``v`` intersect ``blockers``?

        The MIS separation predicate of the parallel scheduler.  On an
        uncached kernel engine this is an early-exit slot BFS — no ball
        materialisation at all; otherwise it reuses the (cached) ball.
        """
        self._sync()
        if self.use_kernel and not self.cache_balls:
            if not blockers:
                return False
            self.counters.ball_computations += 1
            hit, expansions = self._kernel.ball_intersects(v, radius, blockers)
            self.counters.bfs_expansions += expansions
            sanitizer = current_sanitizer()
            if sanitizer is not None:
                sanitizer.check_ball_intersects(
                    self.graph, v, radius, blockers, hit
                )
            return hit
        return not blockers.isdisjoint(self.ball(v, radius))

    def deletable(self, v: int) -> bool:
        """Definition 5: is ``v`` void-preserving deletable (cached)?"""
        if self.owned is not None and v not in self.owned:
            raise OwnedRegionError(
                f"verdict requested for {v} outside the engine's owned region"
            )
        self._sync()
        self.counters.deletability_queries += 1
        cached = self._verdicts.get(v)
        if cached is not None:
            self.counters.deletability_cache_hits += 1
            sanitizer = current_sanitizer()
            if sanitizer is not None:
                sanitizer.check_cached_verdict(self.graph, v, self.tau, cached)
            return cached
        self.counters.deletability_tests += 1
        tracer = self.tracer
        metrics = self.metrics
        if tracer.enabled or metrics is not None:
            # Observed path: span + wall-time histogram per fresh verdict.
            start = perf_counter()
            if tracer.enabled:
                with tracer.trace("engine.verdict", vertex=v):
                    verdict = self._fresh_verdict(v)
            else:
                verdict = self._fresh_verdict(v)
            if metrics is not None:
                metrics.observe(
                    "engine.verdict_wall_s", perf_counter() - start, volatile=True
                )
        else:
            verdict = self._fresh_verdict(v)
        if self.cache_verdicts:
            self._verdicts[v] = verdict
        sanitizer = current_sanitizer()
        if sanitizer is not None:
            sanitizer.check_fresh_verdict(self.graph, v, self.tau, verdict)
        return verdict

    def span_verdicts_batch(self, vertices: Sequence[int]) -> List[bool]:
        """Definition 5 verdicts for a wave of vertices, batched.

        Semantically ``[self.deletable(v) for v in vertices]`` — same
        owned-region guard, verdict cache, span memo, counters and
        sanitizer hooks, in the same per-vertex order — but the fresh
        verdicts of the wave are stacked into one vectorized GF(2)
        elimination (:func:`repro.cycles.batch.span_verdict_batch`)
        under a single ``kernel.batch_verdict`` span instead of one
        Python elimination per vertex.  Cache and span-memo hits are
        resolved *before* packing, so a warm wave never builds a
        matrix.  Engines without the packed path's prerequisites
        (dict-based engines, ball-cached kernel engines, numpy missing)
        fall back to the scalar loop; the batch path itself falls back
        per candidate outside its envelope (DESIGN.md section 10), so
        the answer is total either way.
        """
        if self.owned is not None:
            for v in vertices:
                if v not in self.owned:
                    raise OwnedRegionError(
                        f"verdict requested for {v} outside the engine's "
                        "owned region"
                    )
        if not (self.use_kernel and not self.cache_balls and numpy_available()):
            return [self.deletable(v) for v in vertices]
        self._sync()
        counters = self.counters
        sanitizer = current_sanitizer()
        results: List[Optional[bool]] = [None] * len(vertices)
        fresh: List[int] = []
        counters.deletability_queries += len(vertices)
        verdict_cache = self._verdicts
        for position, v in enumerate(vertices):
            cached = verdict_cache.get(v)
            if cached is not None:
                counters.deletability_cache_hits += 1
                if sanitizer is not None:
                    sanitizer.check_cached_verdict(
                        self.graph, v, self.tau, cached
                    )
                results[position] = cached
            else:
                fresh.append(position)
        if not fresh:
            return results  # type: ignore[return-value]
        counters.deletability_tests += len(fresh)
        kernel = self._kernel
        member_lists: List[List[int]] = []
        packed_positions: List[int] = []
        signatures: List[Optional[Tuple]] = []
        for position in fresh:
            v = vertices[position]
            slots = kernel.punctured_ball_slots(v, self.radius)
            counters.ball_computations += 1
            counters.bfs_expansions += len(slots) + 1
            if not slots:
                # An isolated vertex supports no cycles; deletion is safe.
                results[position] = True
                continue
            if self.memoize_spans:
                __, sig = kernel.member_rows_signature(slots)
                memoized = self.span_memo.get(self.tau, sig)
                if memoized is not None:
                    counters.span_memo_hits += 1
                    results[position] = memoized
                    continue
                counters.span_memo_misses += 1
            else:
                sig = None
            member_lists.append(slots)
            packed_positions.append(position)
            signatures.append(sig)
        if member_lists:
            counters.span_computations += len(member_lists)
            tracer = self.tracer
            metrics = self.metrics
            if tracer.enabled or metrics is not None:
                start = perf_counter()
                if tracer.enabled:
                    with tracer.trace(
                        "kernel.batch_verdict",
                        candidates=len(member_lists),
                        tau=self.tau,
                    ):
                        verdicts = span_verdict_batch(
                            kernel, member_lists, self.tau
                        )
                else:
                    verdicts = span_verdict_batch(kernel, member_lists, self.tau)
                if metrics is not None:
                    metrics.observe(
                        "engine.batch_verdict_wall_s",
                        perf_counter() - start,
                        volatile=True,
                    )
            else:
                verdicts = span_verdict_batch(kernel, member_lists, self.tau)
            for position, sig, verdict in zip(
                packed_positions, signatures, verdicts
            ):
                results[position] = verdict
                if sig is not None:
                    counters.span_memo_evictions += self.span_memo.put(
                        self.tau, sig, verdict
                    )
        for position in fresh:
            v = vertices[position]
            verdict = results[position]
            if self.cache_verdicts:
                verdict_cache[v] = verdict
            if sanitizer is not None:
                sanitizer.check_batch_verdict(self.graph, v, self.tau, verdict)
        return results  # type: ignore[return-value]

    def _fresh_verdict(self, v: int) -> bool:
        if self.use_kernel and not self.cache_balls:
            # Slot-native path: the punctured neighbourhood never leaves
            # slot space (no frozensets, no id round-trips).
            kernel = self._kernel
            slots = kernel.punctured_ball_slots(v, self.radius)
            self.counters.ball_computations += 1
            self.counters.bfs_expansions += len(slots) + 1
            return self._verdict_from_slots(kernel, slots)
        return self._neighborhood_verdict(self.punctured_neighborhood(v))

    def _verdict_from_slots(self, kernel, slots: List[int]) -> bool:
        if not slots:
            # An isolated vertex supports no cycles; deleting it is safe.
            return True
        mrows = None
        if self.memoize_spans:
            mrows, sig = kernel.member_rows_signature(slots)
            memoized = self.span_memo.get(self.tau, sig)
            if memoized is not None:
                self.counters.span_memo_hits += 1
                return memoized
            self.counters.span_memo_misses += 1
        self.counters.span_computations += 1
        verdict = kernel.span_connected_verdict(slots, self.tau, mrows)
        if self.memoize_spans:
            self.counters.span_memo_evictions += self.span_memo.put(
                self.tau, sig, verdict
            )
        return verdict

    def _neighborhood_verdict(self, neighborhood: FrozenSet[int]) -> bool:
        if not neighborhood:
            # An isolated vertex supports no cycles; deleting it is safe.
            return True
        if self.use_kernel:
            kernel = self._kernel
            return self._verdict_from_slots(kernel, kernel.member_slots(neighborhood))
        view = self.graph.subgraph_view(neighborhood)
        if self.memoize_spans:
            sig = view.signature()
            memoized = self.span_memo.get(self.tau, sig)
            if memoized is not None:
                self.counters.span_memo_hits += 1
                return memoized
            self.counters.span_memo_misses += 1
        verdict = view.is_connected()
        if verdict:
            self.counters.span_computations += 1
            verdict = ShortCycleSpan(view, self.tau).spans_cycle_space()
        if self.memoize_spans:
            self.counters.span_memo_evictions += self.span_memo.put(
                self.tau, sig, verdict
            )
        return verdict

    def boundary_partitionable(self, boundary_cycles) -> bool:
        """Propositions 2/3 on the engine's *current* graph.

        The full-graph :class:`ShortCycleSpan` is cached per graph
        version, so repeated criterion checks between mutations are free.
        """
        from repro.core.criterion import is_tau_partitionable

        return is_tau_partitionable(
            self.graph, boundary_cycles, self.tau, span=self.full_span()
        )

    def full_span(self) -> ShortCycleSpan:
        """The short-cycle span of the whole graph (version-cached)."""
        self._sync()
        if self._full_span is None or self._full_span_version != self.graph.version:
            self.counters.span_computations += 1
            self._full_span = ShortCycleSpan(self.graph, self.tau)
            self._full_span_version = self.graph.version
        return self._full_span

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def fork(self) -> "LocalTopologyEngine":
        """An engine on an independent graph copy with warm caches.

        Shares the span memo and the counters object with the parent (so
        accounting aggregates), but copies the graph, ball cache, owner
        index and verdict cache — mutations in the fork leave the parent
        untouched.  Used by the lifetime rotation: each shift schedules
        on a fork and inherits every verdict that is still valid.
        """
        self._sync()
        clone = LocalTopologyEngine(
            self.graph.copy(),
            self.tau,
            counters=self.counters,
            span_memo=self.span_memo,
            cache_balls=self.cache_balls,
            cache_verdicts=self.cache_verdicts,
            memoize_spans=self.memoize_spans,
            use_kernel=self.use_kernel,
            tracer=self.tracer,
            metrics=self.metrics,
            owned=self.owned,
        )
        clone._balls = dict(self._balls)
        clone._owners = {m: set(keys) for m, keys in self._owners.items()}
        clone._verdicts = dict(self._verdicts)
        return clone


def punctured_deletable(
    graph: NetworkGraph,
    v: int,
    tau: int,
    *,
    counters: Optional[TopologyCounters] = None,
    span_memo: Optional[SpanMemo] = None,
) -> bool:
    """One-shot Definition 5 test, copy-free, without engine state.

    The stateless sibling of :meth:`LocalTopologyEngine.deletable`, used
    by call sites that test a single vertex on an arbitrary graph.
    """
    k = neighborhood_radius(tau)
    dist = graph.bfs_distances(v, cutoff=k)
    if counters is not None:
        counters.deletability_queries += 1
        counters.deletability_tests += 1
        counters.ball_computations += 1
        counters.bfs_expansions += len(dist)
    neighborhood = frozenset(dist) - {v}
    if not neighborhood:
        return True
    view = graph.subgraph_view(neighborhood)
    sig = None
    if span_memo is not None:
        sig = view.signature()
        memoized = span_memo.get(tau, sig)
        if memoized is not None:
            if counters is not None:
                counters.span_memo_hits += 1
            return memoized
        if counters is not None:
            counters.span_memo_misses += 1
    verdict = view.is_connected()
    if verdict:
        if counters is not None:
            counters.span_computations += 1
        verdict = ShortCycleSpan(view, tau).spans_cycle_space()
    if span_memo is not None:
        span_memo.put(tau, sig, verdict)
    return verdict

"""Canonical subgraph signatures and the span-verdict memo.

The deletability verdict of Definition 5 is a pure function of the
labelled punctured-neighbourhood subgraph (and ``tau``): connectivity
plus "do cycles of length <= tau span the whole cycle space".  A
canonical content key — the sorted vertex and edge tuples — therefore
lets verdicts be shared between repeated tests of the same vertex, tests
of different vertices with coinciding neighbourhoods, and (via a shared
:class:`SpanMemo`) across engines working on overlapping graphs, e.g.
successive shifts of the lifetime rotation.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.network.graph import Edge, NetworkGraph, SubgraphView

#: (sorted vertices, sorted edges) — a canonical labelled-subgraph key.
SubgraphSignature = Tuple[Tuple[int, ...], Tuple[Edge, ...]]


def graph_signature(graph) -> SubgraphSignature:
    """Canonical content key of a :class:`NetworkGraph` or view."""
    if isinstance(graph, SubgraphView):
        return graph.signature()
    return tuple(sorted(graph.vertices())), tuple(sorted(graph.edges()))


class SpanMemo:
    """Memo of span/deletability verdicts keyed by subgraph signature.

    Safe to share between any number of engines (verdicts are pure
    functions of ``(tau, subgraph)``; ``tau`` is part of the key).  The
    memo is bounded: when ``maxsize`` is reached it is cleared wholesale,
    which keeps the worst case at "no worse than no memo at all".
    """

    __slots__ = ("_store", "maxsize")

    def __init__(self, maxsize: int = 100_000) -> None:
        self._store: Dict[Tuple[int, SubgraphSignature], bool] = {}
        self.maxsize = maxsize

    def __len__(self) -> int:
        return len(self._store)

    def get(self, tau: int, sig: SubgraphSignature) -> Optional[bool]:
        return self._store.get((tau, sig))

    def put(self, tau: int, sig: SubgraphSignature, verdict: bool) -> None:
        if len(self._store) >= self.maxsize:
            self._store.clear()
        self._store[(tau, sig)] = verdict

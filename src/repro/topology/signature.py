"""Canonical subgraph signatures and the span-verdict memo.

The deletability verdict of Definition 5 is a pure function of the
labelled punctured-neighbourhood subgraph (and ``tau``): connectivity
plus "do cycles of length <= tau span the whole cycle space".  A
canonical content key — the sorted vertex and edge tuples — therefore
lets verdicts be shared between repeated tests of the same vertex, tests
of different vertices with coinciding neighbourhoods, and (via a shared
:class:`SpanMemo`) across engines working on overlapping graphs, e.g.
successive shifts of the lifetime rotation or the workers of the
process-parallel runner (each worker owns one memo that stays warm for
its whole lifetime).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.network.graph import Edge, SubgraphView

#: (sorted vertices, sorted edges) — a canonical labelled-subgraph key.
SubgraphSignature = Tuple[Tuple[int, ...], Tuple[Edge, ...]]


def graph_signature(graph) -> SubgraphSignature:
    """Canonical content key of a :class:`NetworkGraph` or view."""
    if isinstance(graph, SubgraphView):
        return graph.signature()
    return tuple(sorted(graph.vertices())), tuple(sorted(graph.edges()))


class SpanMemo:
    """LRU memo of span/deletability verdicts keyed by subgraph signature.

    Safe to share between any number of engines (verdicts are pure
    functions of ``(tau, subgraph)``; ``tau`` is part of the key).  The
    memo is bounded by ``maxsize`` entries with least-recently-used
    eviction — long lifetime rotations and sweep workers reuse recent
    neighbourhood shapes heavily, so evicting the stalest entry keeps
    the hit rate while capping memory.  ``hits`` / ``misses`` /
    ``evictions`` count the memo's own traffic across every engine
    sharing it; per-engine accounting rides on
    :class:`~repro.topology.counters.TopologyCounters`.
    """

    __slots__ = ("_store", "maxsize", "hits", "misses", "evictions")

    def __init__(self, maxsize: int = 100_000) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self._store: Dict[Tuple[int, SubgraphSignature], bool] = {}
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def get(self, tau: int, sig: SubgraphSignature) -> Optional[bool]:
        store = self._store
        key = (tau, sig)
        verdict = store.get(key)
        if verdict is None:
            self.misses += 1
            return None
        # Refresh recency: dicts preserve insertion order, so pop and
        # re-insert moves the key to the young end.
        store[key] = store.pop(key)
        self.hits += 1
        return verdict

    def put(self, tau: int, sig: SubgraphSignature, verdict: bool) -> int:
        """Store a verdict; returns the number of entries evicted (0/1)."""
        store = self._store
        key = (tau, sig)
        if key in store:
            store[key] = store.pop(key)
            store[key] = verdict
            return 0
        evicted = 0
        if len(store) >= self.maxsize:
            del store[next(iter(store))]
            self.evictions += 1
            evicted = 1
        store[key] = verdict
        return evicted

"""Label-propagation MIS waves over a frozen CSR snapshot.

The scheduler's greedy random-priority MIS admits a *wave* formulation:
a candidate is decided the moment every smaller-priority candidate
within the separation radius is decided — it loses if one of them won,
and is ready to take its deletability test otherwise.  Both conditions
are radius-bounded minima over the candidate priorities:

* ``win_min(v)``  — smallest priority of a *winner* within ``k`` hops;
  ``win_min(v) < prio(v)`` blocks ``v`` (the lazy scan's ``blocked``
  set, without materialising a single separation ball).
* ``und_min(v)``  — smallest priority of an *undecided* candidate
  within ``k`` hops; ``und_min(v) == prio(v)`` means ``v`` is the local
  priority minimum, so its test outcome can no longer be affected.

:class:`WaveMIS` computes both with ``k`` passes of a min-label
propagation over a flat copy of the kernel's live adjacency (closed
neighbourhood per pass; the copy is taken at construction, when the
round's deletions have already unlinked dead slots, so labels can never
relay through a deleted vertex).  Statuses are monotone — undecided ->
winner/loser, never back — so any interleaving of wave steps converges
to the same fixpoint: the greedy MIS of the priority order.  That makes
one implementation serve both consumers:

* the unsharded scheduler (:mod:`repro.core.scheduler`) loops steps to
  the fixpoint, feeding each wave's testable set to
  :meth:`~repro.topology.engine.LocalTopologyEngine.span_verdicts_batch`;
* the shard runtime (:mod:`repro.shard.runtime`) runs one step per
  sub-round against the statuses known at the barrier, tests only its
  *owned* testable candidates, and learns foreign decisions through
  :meth:`WaveMIS.apply_row` — the tested set per round is provably the
  serial scan's (no eager redundant verdicts).

Snapshot semantics: a step decides against the statuses frozen at its
entry, exactly the shard barrier's contract, so sharded and unsharded
runs walk the same wave sequence.  Without numpy the propagation runs
in pure Python over the same live adjacency lists — same answers,
test-scale speed.
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, Iterable, List, Optional, Tuple

try:  # pragma: no cover - exercised by the import-time environment
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: MIS statuses; plain ints so status rows pickle small.  The shard
#: protocol ships them across processes, so they are defined here, at
#: the lowest layer that understands them.
UNDECIDED, WINNER, LOSER = 0, 1, 2

#: Priority sentinel: larger than any real priority index.
_INF = (1 << 62)


class WaveMIS:
    """Greedy random-priority MIS as radius-k label-propagation waves.

    Parameters
    ----------
    kernel:
        The :class:`~repro.cycles.kernel.CSRGraph` snapshot the round
        runs against.  The graph must stay frozen for the object's
        lifetime (one scheduling round) — deletions happen between
        rounds.
    rows:
        ``(vertex id, priority)`` pairs for every candidate this view
        knows (for a shard: owned and halo candidates).  Priorities are
        globally unique per round.
    radius:
        The separation radius ``k`` (``deletion_radius(tau)``): two MIS
        members must sit more than ``k`` hops apart.
    owned:
        Optional id filter: :meth:`step` only reports *testable*
        candidates from this set (a shard may only test what it owns).
        Blocked decisions still apply to every candidate — they are
        facts about already-exported winners, identical in every view.
    """

    def __init__(
        self,
        kernel,
        rows: Iterable[Tuple[int, int]],
        radius: int,
        owned: Optional[frozenset] = None,
    ) -> None:
        self._kernel = kernel
        self._radius = radius
        self._prio: Dict[int, int] = dict(rows)
        self._status: Dict[int, int] = {v: UNDECIDED for v in self._prio}
        self._owned = owned
        index = kernel.index
        self._slot_of = {v: index[v] for v in self._prio}
        self._winners: List[int] = []
        self._open = len(self._prio)
        self._open_owned = (
            self._open
            if owned is None
            else sum(1 for v in self._prio if v in owned)
        )
        if np is not None:
            self._init_arrays(kernel)

    def _init_arrays(self, kernel) -> None:
        """Freeze the live adjacency and the candidate masks as arrays.

        The flat copy is taken *after* the previous round's deletions,
        so dead slots appear only as empty segments: they have no
        incoming edges, their labels stay at the sentinel, and nothing
        ever relays through them — no per-pass masking required.
        """
        adj = kernel.adj
        nslots = len(adj)
        degrees = np.fromiter(map(len, adj), np.int64, count=nslots)
        indptr = np.zeros(nslots + 1, np.int64)
        np.cumsum(degrees, out=indptr[1:])
        size = int(indptr[-1])
        self._flat = np.fromiter(chain.from_iterable(adj), np.int64, count=size)
        # reduceat boundaries over the non-empty segments only: their
        # consecutive starts are exact segment borders (empty segments
        # contribute no elements between them), and the last one runs to
        # the end of ``flat`` — no index clipping, which would silently
        # truncate the final segment when trailing slots are dead.
        self._nonempty = np.flatnonzero(degrees > 0)
        self._starts = indptr[:-1][self._nonempty]
        self._prio_arr = np.full(nslots, _INF, dtype=np.int64)
        for v, slot in self._slot_of.items():
            self._prio_arr[slot] = self._prio[v]
        self._undecided = np.zeros(nslots, dtype=bool)
        self._undecided[list(self._slot_of.values())] = True
        self._winner_mask = np.zeros(nslots, dtype=bool)
        if self._owned is not None:
            self._owned_mask = np.zeros(nslots, dtype=bool)
            self._owned_mask[
                [self._slot_of[v] for v in self._prio if v in self._owned]
            ] = True
        else:
            self._owned_mask = None

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(self, labels):
        """``radius`` closed-neighbourhood min passes over one array."""
        flat = self._flat
        if len(flat) == 0:
            return labels
        starts = self._starts
        nonempty = self._nonempty
        for _ in range(self._radius):
            reduced = np.minimum.reduceat(labels[flat], starts)
            np.minimum(labels[nonempty], reduced, out=reduced)
            labels[nonempty] = reduced
        return labels

    def _propagate_python(self):
        """Pure-Python twin of :meth:`_propagate` (numpy missing).

        Walks the kernel's live adjacency lists directly, carrying
        undecided-min and winner-min labels in dicts keyed by slot.
        """
        adj = self._kernel.adj
        status = self._status
        prio = self._prio
        und: Dict[int, int] = {}
        win: Dict[int, int] = {}
        for v, slot in self._slot_of.items():
            state = status[v]
            if state == UNDECIDED:
                und[slot] = prio[v]
            elif state == WINNER:
                win[slot] = prio[v]
        for labels in (und, win):
            for _ in range(self._radius):
                frontier = dict(labels)
                for slot, value in labels.items():
                    for other in adj[slot]:
                        if frontier.get(other, _INF) > value:
                            frontier[other] = value
                labels.clear()
                labels.update(frontier)
        return und, win

    # ------------------------------------------------------------------
    # Wave steps
    # ------------------------------------------------------------------
    def step(self) -> Tuple[List[int], List[int]]:
        """One snapshot-semantics wave against the current statuses.

        Returns ``(testable, blocked)``, both priority-ascending vertex
        id lists: ``blocked`` are candidates newly decided as losers (a
        smaller-priority winner sits within the radius — already
        applied), ``testable`` are candidates whose verdict is now due
        (report their outcomes through :meth:`record_verdict`).  With
        an ``owned`` filter, ``testable`` is restricted to owned
        candidates; ``blocked`` is not.  An empty step (``[], []``)
        with undecided candidates remaining means this view is waiting
        on foreign decisions — only possible under an ``owned`` filter.
        """
        if self._open_owned == 0:
            # Nothing left that this view may decide or test: foreign
            # stragglers (halo candidates) resolve through their owners.
            return [], []
        if np is None:
            return self._step_python()
        prio_arr = self._prio_arr
        undecided = self._undecided
        und_min = np.where(undecided, prio_arr, _INF)
        self._propagate(und_min)
        if self._winners:
            win_min = np.where(self._winner_mask, prio_arr, _INF)
            self._propagate(win_min)
            blocked_mask = undecided & (win_min < prio_arr)
        else:
            blocked_mask = np.zeros_like(undecided)
        testable_mask = undecided & ~blocked_mask & (und_min == prio_arr)
        if self._owned_mask is not None:
            testable_mask &= self._owned_mask
        ids = self._kernel.ids
        blocked = [ids[slot] for slot in np.flatnonzero(blocked_mask)]
        testable = [ids[slot] for slot in np.flatnonzero(testable_mask)]
        prio = self._prio
        blocked.sort(key=prio.__getitem__)
        testable.sort(key=prio.__getitem__)
        self._decide_losers(blocked)
        undecided[blocked_mask] = False
        return testable, blocked

    def _step_python(self) -> Tuple[List[int], List[int]]:
        und, win = self._propagate_python()
        prio = self._prio
        status = self._status
        owned = self._owned
        blocked: List[int] = []
        testable: List[int] = []
        for v, slot in self._slot_of.items():
            if status[v] != UNDECIDED:
                continue
            mine = prio[v]
            if win.get(slot, _INF) < mine:
                blocked.append(v)
            elif und.get(slot, _INF) == mine and (owned is None or v in owned):
                testable.append(v)
        blocked.sort(key=prio.__getitem__)
        testable.sort(key=prio.__getitem__)
        self._decide_losers(blocked)
        return testable, blocked

    def _decide_losers(self, blocked: List[int]) -> None:
        status = self._status
        for v in blocked:
            status[v] = LOSER
        self._open -= len(blocked)
        owned = self._owned
        if owned is None:
            self._open_owned = self._open
        else:
            self._open_owned -= sum(1 for v in blocked if v in owned)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def record_verdict(self, v: int, deletable: bool) -> None:
        """Apply a tested candidate's outcome (winner iff deletable)."""
        self._set(v, WINNER if deletable else LOSER)

    def apply_row(self, v: int, status: int) -> None:
        """Apply a foreign decision (shard status row); idempotent."""
        if status != UNDECIDED and self._status.get(v) == UNDECIDED:
            self._set(v, status)

    def _set(self, v: int, status: int) -> None:
        self._status[v] = status
        self._open -= 1
        if self._owned is None or v in self._owned:
            self._open_owned -= 1
        if status == WINNER:
            self._winners.append(v)
        if np is not None:
            slot = self._slot_of[v]
            self._undecided[slot] = False
            if status == WINNER:
                self._winner_mask[slot] = True

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def winners(self) -> List[int]:
        """All winners so far, priority-ascending (the deletion order)."""
        return sorted(self._winners, key=self._prio.__getitem__)

    def undecided_count(self) -> int:
        """Open candidates (owned ones only, under an ``owned`` filter)."""
        return self._open_owned

    def status_of(self, v: int) -> int:
        return self._status[v]

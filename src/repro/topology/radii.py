"""Named radius derivations — the single home for the paper's bounds.

Every locality argument in the paper reduces to one constant: the
neighbourhood radius ``k = ceil(tau / 2)`` of Definition 5.  Everything
else — the deletion radius, the MIS separation, flood TTL budgets, the
shard halo band, the Horton stage-3 cutoff — is a one-step derivation
from ``k``.  The seed code spelled several of these as inline arithmetic
(``(tau + 1) // 2``, ``k + 1``, ``m - 1``); this module names each
derivation once so the static bounds front (``repro-bounds``,
``src/repro/checks/bounds.py``) can recognise call sites symbolically
instead of pattern-matching magic literals.

Layering: this module must stay a *leaf* (stdlib ``math`` only) so any
layer — ``core``, ``shard``, ``runtime``, ``checks`` — can import it
without cycles.  In particular it must never import ``repro.cycles`` or
``repro.topology.engine``.

Symbol glossary used by ``repro-bounds`` and DESIGN.md section 14:

========  =====================================  ======================
symbol    meaning                                derivation
========  =====================================  ======================
``tau``   confine size (max hole boundary)       input, ``tau >= 3``
``k``     neighbourhood / deletion radius        ``ceil(tau / 2)``
``m``     MIS separation                         ``k + 1``
========  =====================================  ======================
"""

from __future__ import annotations

import math

__all__ = [
    "neighborhood_radius",
    "deletion_radius",
    "mis_separation",
    "halo_radius",
    "flood_ttl",
    "stage_cutoff",
]


def neighborhood_radius(tau: int) -> int:
    """Definition 5's ``k = ceil(tau / 2)``."""
    if tau < 3:
        raise ValueError("confine size must be at least 3")
    return math.ceil(tau / 2)


def deletion_radius(tau: int) -> int:
    """The deletability verdict's ball radius.

    Theorem 4 evaluates deletability on the punctured ``k``-hop
    neighbourhood; the deletion radius *is* the neighbourhood radius.
    (``repro.core.vpt.deletion_radius`` re-exports this for the public
    API; keep both names so call sites read as the theorem they cite.)
    """
    return neighborhood_radius(tau)


def mis_separation(tau: int) -> int:
    """Hop separation ``m = k + 1`` between concurrently deleted nodes.

    Two vertices at hop distance ``>= k + 1`` have disjoint punctured
    ``k``-balls *after either deletion*, so their verdicts commute and
    the scheduler may delete a whole ``m``-separated MIS per round.
    """
    return deletion_radius(tau) + 1


def halo_radius(tau: int) -> int:
    """The shard halo band radius — exactly ``k`` hops past owned rows.

    A shard must answer deletability for every owned vertex, which reads
    the punctured ``k``-ball; a band of exactly
    ``k = neighborhood_radius(tau)`` foreign hops is therefore both
    sufficient and minimal (a thinner band truncates some owned ball, a
    thicker one ships rows no verdict reads).
    """
    return neighborhood_radius(tau)


def flood_ttl(radius: int) -> int:
    """Initial TTL for a flood that must cover a ``radius``-hop ball.

    The origin's broadcast already travels one hop, so covering a
    ``radius``-hop ball needs ``radius - 1`` further relays: TTL starts
    at ``radius - 1`` and each relay decrements.  The runtime spells the
    two instances as ``self.k - 1`` (DELETE) and ``m - 1`` (PRIORITY) so
    ``repro-verify``'s FloodSpec extraction can read the radius symbol
    straight off the initializer; this derivation is the named form the
    bounds front proves those initializers against.
    """
    if radius < 1:
        raise ValueError("flood radius must be at least 1")
    return radius - 1


def stage_cutoff(tau: int) -> int:
    """Horton stage-3 BFS depth ``floor(tau / 2)``.

    Candidate cycles through a vertex ``v`` with length ``<= tau`` stay
    within ``floor(tau / 2)`` hops of ``v``, which is ``<= k`` — the
    kernel's stage-3 traversal never escapes the certified ball.  (The
    kernel keeps the literal ``tau // 2`` inline because ``repro.cycles``
    must not import ``repro.topology``; ``repro-bounds`` checks that
    literal against this derivation instead.)
    """
    if tau < 3:
        raise ValueError("confine size must be at least 3")
    return tau // 2

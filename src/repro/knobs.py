"""The declared registry of every ``REPRO_*`` environment knob.

Every environment variable the reproduction reads is declared here
exactly once — name, type, default, owning layer — and everything else
derives from the declaration:

* **Runtime reads** go through :func:`get_flag` / :func:`get_int` /
  :func:`get_str`, so a knob's default lives in one place (PR 9 retired
  the duplicated fan-out crossover: the old ``SCHEDULE_FANOUT_MIN_NODES``
  constant and the ``REPRO_FANOUT_MIN_NODES`` env default are both this
  registry's ``2000``).
* **The static analysis** (:mod:`repro.checks.concurrency`, REPRO308)
  flags any ``os.environ`` read of an undeclared ``REPRO_*`` name and
  any literal default that disagrees with the registry.
* **The docs** — the knob tables in README.md and EXPERIMENTS.md are
  generated from this file (``python -m repro.knobs --write``) and a
  drift test fails when a knob is added without registry + docs.
* **The bench fingerprint** — :mod:`repro.obs.bench` records the knobs
  marked ``fingerprint=True`` next to every timing, so a baseline from a
  differently-knobbed run never gates a timing comparison.

This module sits below every layer (it imports only the stdlib), so the
kernel, the parallel layer, the checks package and the benchmarks can
all consume it without creating import cycles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Values (lower-cased, stripped) that turn a ``flag`` knob off.
FALSE_WORDS = ("", "0", "false", "off", "no")


@dataclass(frozen=True)
class Knob:
    """One declared environment knob."""

    name: str  # the environment variable, e.g. "REPRO_SHM"
    kind: str  # "flag" | "int" | "str"
    default: Optional[str]  # raw value assumed when unset; None = computed
    layer: str  # owning layer ("parallel", "cycles", "checks", ...)
    fingerprint: bool  # recorded in the bench environment fingerprint?
    description: str

    def default_text(self) -> str:
        """The default as the docs table shows it."""
        if self.default is None:
            return "(computed)"
        if self.kind == "flag":
            return "on" if self.default.strip().lower() not in FALSE_WORDS else "off"
        return self.default if self.default else '""'


#: The registry, sorted by name.  Adding an ``os.environ`` read of a new
#: ``REPRO_*`` name without a row here fails both REPRO308 and the
#: drift test in tests/unit/test_knobs.py.
KNOBS: Tuple[Knob, ...] = (
    Knob(
        name="REPRO_BATCH_VERDICTS",
        kind="flag",
        default="",
        layer="cycles",
        fingerprint=True,
        description=(
            "route whole verdict waves through the batched uint64 GF(2) "
            "kernel (schedules are byte-identical either way)"
        ),
    ),
    Knob(
        name="REPRO_BENCH_SCALE",
        kind="str",
        default="full",
        layer="benchmarks",
        fingerprint=False,
        description="benchmark scale preset (`smoke` shrinks sizes and relaxes floors for CI)",
    ),
    Knob(
        name="REPRO_BENCH_SHARDS",
        kind="int",
        default=None,
        layer="benchmarks",
        fingerprint=False,
        description="shard count for the sharded scaling bench (default picked by the scale preset)",
    ),
    Knob(
        name="REPRO_BENCH_WORKERS",
        kind="int",
        default="1",
        layer="benchmarks",
        fingerprint=False,
        description="worker count for the parallel benches",
    ),
    Knob(
        name="REPRO_CHAOS",
        kind="flag",
        default="",
        layer="parallel",
        fingerprint=True,
        description=(
            "chaos-order sanitizer: permute completion/consumption order at "
            "every pool barrier and inject seeded worker delays; outputs "
            "must stay byte-identical (the runtime witness of the "
            "determinism contract)"
        ),
    ),
    Knob(
        name="REPRO_CHAOS_SEED",
        kind="int",
        default="0",
        layer="parallel",
        fingerprint=False,
        description="seed of the chaos permutation/delay stream",
    ),
    Knob(
        name="REPRO_FANOUT_MIN_NODES",
        kind="int",
        default="2000",
        layer="parallel",
        fingerprint=True,
        description=(
            "fan-out crossover in graph vertices: below it schedules stay "
            "on the always-safe serial path (tests set 0 to force the pool; "
            "calibrated above the measured break-even, BENCH_kernel.json)"
        ),
    ),
    Knob(
        name="REPRO_SANITIZE",
        kind="str",
        default="",
        layer="checks",
        fingerprint=True,
        description=(
            "shadow-oracle sanitizer (`1` = raise on violation, `warn` = "
            "record); exported to the environment so pool workers "
            "self-activate"
        ),
    ),
    Knob(
        name="REPRO_SANITIZE_STRIDE",
        kind="int",
        default="1",
        layer="checks",
        fingerprint=False,
        description="sanitizer sampling stride (shadow-check every Nth sample)",
    ),
    Knob(
        name="REPRO_SHM",
        kind="flag",
        default="",
        layer="parallel",
        fingerprint=True,
        description=(
            "publish base graphs/partitions as shared-memory CSR segments "
            "instead of pickled blobs (coordinator owns every segment; "
            "workers attach read-only)"
        ),
    ),
)

_BY_NAME: Dict[str, Knob] = {k.name: k for k in KNOBS}


def knob(name: str) -> Knob:
    """The declared :class:`Knob`, or :class:`KeyError` for undeclared names."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"undeclared knob {name!r}: declare it in repro.knobs.KNOBS "
            "(REPRO308 flags undeclared os.environ reads)"
        ) from None


def knob_names(
    layer: Optional[str] = None, fingerprint: Optional[bool] = None
) -> Tuple[str, ...]:
    """Declared names, optionally filtered by layer / fingerprint flag."""
    return tuple(
        k.name
        for k in KNOBS
        if (layer is None or k.layer == layer)
        and (fingerprint is None or k.fingerprint == fingerprint)
    )


def raw(name: str) -> Optional[str]:
    """The raw environment value of a *declared* knob (None when unset)."""
    return os.environ.get(knob(name).name)


def get_flag(name: str) -> bool:
    """A ``flag`` knob's effective value (:data:`FALSE_WORDS` disable)."""
    value = raw(name)
    if value is None:
        value = knob(name).default or ""
    return value.strip().lower() not in FALSE_WORDS


def get_int(name: str) -> int:
    """An ``int`` knob's effective value.

    Unset or unparsable values fall back to the declared default; a
    knob declared with ``default=None`` (computed by its owner) raises
    ``ValueError`` here — its owner must supply the fallback itself.
    """
    declared = knob(name)
    value = raw(name)
    if value is not None:
        try:
            return int(value)
        except ValueError:
            pass
    if declared.default is None:
        raise ValueError(f"{name} has no registry default; the owner computes it")
    return int(declared.default)


def get_str(name: str) -> str:
    """A ``str`` knob's effective value (declared default when unset)."""
    value = raw(name)
    if value is None:
        return knob(name).default or ""
    return value


# ----------------------------------------------------------------------
# Docs generation: the knob tables in README.md / EXPERIMENTS.md
# ----------------------------------------------------------------------
DOCS_BEGIN = "<!-- repro-knobs:begin (generated by `python -m repro.knobs --write`; do not edit by hand) -->"
DOCS_END = "<!-- repro-knobs:end -->"


def render_table() -> str:
    """The registry as a markdown table, one row per knob."""
    rows = [
        "| Knob | Type | Default | Layer | What it does |",
        "| --- | --- | --- | --- | --- |",
    ]
    for k in KNOBS:
        rows.append(
            f"| `{k.name}` | {k.kind} | {k.default_text()} | {k.layer} "
            f"| {k.description} |"
        )
    return "\n".join(rows)


def docs_block() -> str:
    """The marker-delimited block embedded verbatim in the docs."""
    return f"{DOCS_BEGIN}\n{render_table()}\n{DOCS_END}"


def update_docs(paths: List[str], check: bool = False) -> List[str]:
    """Rewrite (or with ``check`` just diff) the knob block in ``paths``.

    Each file must already contain the begin/end markers; the text
    between them is replaced with the current registry rendering.
    Returns the files whose block was (or would be) changed.
    """
    block = docs_block()
    changed: List[str] = []
    for path in paths:
        with open(path, "r") as handle:
            text = handle.read()
        begin = text.find(DOCS_BEGIN)
        end = text.find(DOCS_END)
        if begin < 0 or end < 0:
            raise ValueError(f"{path}: missing repro-knobs markers")
        updated = text[:begin] + block + text[end + len(DOCS_END):]
        if updated != text:
            changed.append(path)
            if not check:
                with open(path, "w") as handle:
                    handle.write(updated)
    return changed


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.knobs [--write|--check] [files...]``"""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.knobs", description="REPRO_* knob registry and docs table."
    )
    parser.add_argument(
        "files",
        nargs="*",
        default=["README.md", "EXPERIMENTS.md"],
        help="docs carrying the generated block (default: README.md EXPERIMENTS.md)",
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--write", action="store_true", help="rewrite the block in the docs"
    )
    group.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any doc block is out of date",
    )
    args = parser.parse_args(argv)
    if args.write or args.check:
        changed = update_docs(args.files, check=args.check)
        if args.check and changed:
            print("out-of-date knob tables: " + ", ".join(changed))
            return 1
        for path in changed:
            print(f"updated knob table: {path}")
        return 0
    print(render_table())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    import sys

    sys.exit(main())

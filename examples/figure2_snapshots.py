#!/usr/bin/env python3
"""Recreate Figure 2's visual story as SVG snapshots.

Deploys a network, runs DCC for tau = 3..6, and writes one SVG per confine
size showing the active coverage set (blue), the sleeping nodes (faded)
and the boundary squares — the same panels as the paper's Figure 2 (b-e).

Run:  python examples/figure2_snapshots.py
Output: figure2_original.svg, figure2_tau3.svg ... figure2_tau6.svg
"""

import random

from repro import dcc_schedule, network_for_average_degree, outer_boundary_cycle
from repro.viz import render_network, render_schedule


def main() -> None:
    network = network_for_average_degree(300, 22.0, rc=1.0, rs=1.0, seed=7)
    boundary = outer_boundary_cycle(network)
    protected = set(network.boundary_nodes) | set(boundary)
    print(
        f"network: {len(network.graph)} nodes, boundary+band {len(protected)}"
    )

    canvas = render_network(
        network.graph,
        network.positions,
        protected,
        title=f"original network ({len(network.graph)} nodes)",
    )
    canvas.save("figure2_original.svg")
    print("wrote figure2_original.svg")

    for tau in (3, 4, 5, 6):
        result = dcc_schedule(
            network.graph, protected, tau, rng=random.Random(tau)
        )
        canvas = render_schedule(
            network.graph,
            result.active,
            network.positions,
            protected,
            title=f"tau={tau}: {result.num_active} active / "
            f"{result.num_removed} asleep",
        )
        path = f"figure2_tau{tau}.svg"
        canvas.save(path)
        print(f"wrote {path} ({result.num_active} active)")


if __name__ == "__main__":
    main()

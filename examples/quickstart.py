#!/usr/bin/env python3
"""Quickstart: schedule a sparse coverage set with DCC.

Deploys a random sensor network, finds its outer boundary, runs the
distributed-confine-coverage scheduler at a confine size chosen from the
sensing ratio, and verifies the result both topologically (cycle-partition
criterion) and geometrically (coverage raster).

Run:  python examples/quickstart.py
"""

import random

from repro import (
    ConfineRequirement,
    dcc_schedule,
    evaluate_coverage,
    is_tau_partitionable,
    network_for_average_degree,
    outer_boundary_cycle,
)


def main() -> None:
    # 1. Deploy: 300 nodes, average degree ~22, unit communication range,
    #    sensing range equal to communication range (gamma = 1).
    network = network_for_average_degree(300, 22.0, rc=1.0, rs=1.0, seed=7)
    print(
        f"deployed {len(network.graph)} nodes, "
        f"{network.graph.num_edges()} links, "
        f"average degree {network.graph.average_degree():.1f}"
    )

    # 2. Boundary: the paper assumes nodes know their boundary role; the
    #    simulator extracts the outer boundary cycle from the embedding.
    boundary = outer_boundary_cycle(network)
    protected = set(network.boundary_nodes) | set(boundary)
    print(f"outer boundary cycle: {len(boundary)} nodes")

    # 3. Choose the confine size from the application requirement.
    #    gamma = 1 allows blanket coverage up to tau = 6 (Proposition 1).
    requirement = ConfineRequirement(gamma=network.gamma, max_hole_diameter=0.0)
    tau = requirement.max_feasible_tau()
    print(f"sensing ratio gamma = {network.gamma:.2f} -> confine size tau = {tau}")

    # 4. Schedule: maximal vertex deletion, MIS-parallel rounds.
    result = dcc_schedule(network.graph, protected, tau, rng=random.Random(7))
    print(
        f"coverage set: {result.num_active} nodes "
        f"({result.num_removed} removed in {result.rounds} rounds)"
    )

    # 5. Verify topologically: the boundary stays tau-partitionable.
    held_before = is_tau_partitionable(network.graph, [boundary], tau)
    held_after = is_tau_partitionable(result.active, [boundary], tau)
    print(f"criterion before={held_before} after={held_after} (Theorem 5)")

    # 6. Verify geometrically (simulator-only ground truth).
    active_positions = [network.positions[v] for v in result.coverage_set]
    report = evaluate_coverage(
        active_positions, network.rs, network.target_area, resolution=90
    )
    print(
        f"measured coverage: {report.covered_fraction:.1%} of target area, "
        f"max hole diameter {report.max_hole_diameter:.3f} (Rc = 1)"
    )


if __name__ == "__main__":
    main()

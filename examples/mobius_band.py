#!/usr/bin/env python3
"""The Möbius-band network: where homology fails and cycle partition works.

A walkthrough of the paper's Figure 1.  The network's Rips complex
triangulates a Möbius band: it is fully covered (every face is a filled
triangle), yet its first homology group is non-trivial — the core circle
cannot be contracted — so the homology-group criterion (HGC) wrongly
reports a coverage hole.  The cycle-partition criterion only asks that the
*outer boundary* be a sum of small cycles, which it is: the XOR of all 16
triangles is exactly the rim.

Run:  python examples/mobius_band.py
"""

from repro import betti_numbers, find_cycle_partition, hgc_verify
from repro.core.criterion import partition_is_valid
from repro.homology import RipsComplex
from repro.network.topologies import mobius_band_network


def main() -> None:
    mobius = mobius_band_network()
    graph, rim = mobius.graph, mobius.outer_boundary
    print(
        f"Moebius-band network: {len(graph)} nodes, {graph.num_edges()} links, "
        f"{len(mobius.triangles)} filled triangles"
    )
    print(f"outer boundary (the paper's a..h): {rim}")
    print(f"core circle  (the paper's 1..4) : {mobius.core_cycle}\n")

    complex_ = RipsComplex.from_graph(graph)
    betti = betti_numbers(complex_)
    print(f"absolute homology of the complex: b0={betti.b0}, b1={betti.b1}")
    print("  -> b1 = 1: the core circle does not bound; the complex has the")
    print("     homotopy type of a circle, exactly as the paper observes.\n")

    verification = hgc_verify(graph, [rim])
    print(
        "HGC verification: relative b1 = "
        f"{verification.relative_betti_1} -> verified = {verification.verified}"
    )
    print("  -> FALSE NEGATIVE: the network is fully covered, but the")
    print("     homology criterion demands every cycle be contractible.\n")

    partition = find_cycle_partition(graph, [rim], 3)
    assert partition is not None
    assert partition_is_valid(graph, [rim], partition, 3)
    print(
        f"cycle-partition criterion: found a 3-bounded partition of the rim "
        f"into {len(partition)} triangles:"
    )
    for cycle in partition:
        print(f"    {list(cycle.vertices)}")
    print("\n  -> the rim is 3-partitionable, so the network achieves")
    print("     3-confine coverage: DCC accepts what HGC rejects.")


if __name__ == "__main__":
    main()

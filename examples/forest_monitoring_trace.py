#!/usr/bin/env python3
"""Forest ecological monitoring on a GreenOrbs-style RSSI trace.

Reproduces the paper's Section VI-B study: build a network topology from
accumulated RSSI records (synthesised here — see DESIGN.md), inspect the
RSSI CDF and the ~80%-retention threshold, then run DCC at increasing
confine sizes and watch the retained inner-node count collapse: the trace
topology's long links reward larger cycles.

DCC uses only the connectivity graph; the irregular, decidedly non-UDG
radio behaviour of the forest never has to be modelled.

Run:  python examples/forest_monitoring_trace.py
"""

import random

from repro import dcc_schedule, generate_greenorbs_trace, outer_boundary_cycle
from repro.traces.rssi import rssi_cdf


def main() -> None:
    print("synthesising the GreenOrbs-style trace (two simulated days)...")
    trace = generate_greenorbs_trace(seed=1)
    values = trace.trace.edge_rssi_values()
    print(
        f"accumulated {len(trace.trace.records)} RSSI records over "
        f"{len(trace.positions)} nodes -> {len(values)} undirected links"
    )

    print("\nRSSI CDF (fraction of links at or above threshold):")
    thresholds = [-55.0, -65.0, -75.0, -85.0, -95.0]
    for threshold, fraction in zip(thresholds, rssi_cdf(values, thresholds)):
        bar = "#" * int(40 * fraction)
        print(f"  >= {threshold:6.1f} dBm  {fraction:6.1%}  {bar}")
    print(
        f"link threshold {trace.threshold_dbm:.1f} dBm retains ~80% of links "
        f"-> {trace.graph.num_edges()} edges"
    )

    network = trace.as_network(rc=75.0, rs=75.0)
    boundary = outer_boundary_cycle(network)
    protected = set(boundary)
    print(
        f"\ntrace network: {len(network.graph)} nodes, average degree "
        f"{network.graph.average_degree():.1f}, boundary ring of "
        f"{len(boundary)} nodes"
    )

    print("\nDCC on the trace topology (inner nodes kept per confine size):")
    for tau in (3, 4, 5, 6):
        result = dcc_schedule(
            network.graph, protected, tau, rng=random.Random(tau)
        )
        inner_left = result.num_active - len(protected)
        bar = "#" * max(1, inner_left // 2)
        print(f"  tau={tau}: {inner_left:4d} inner nodes  {bar}")

    print(
        "\nThe sharp drop from tau=3 to tau=5 mirrors the paper's Figure 6: "
        "long\ntrace links give larger confine sizes many more chances to "
        "shortcut."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Target surveillance with QoC-bounded partial coverage.

The paper's motivating application: a surveillance network does not need
every point covered at every instant — it needs a guarantee that a moving
target cannot travel far undetected.  The maximum hole diameter bounds the
longest straight-line escape, so the operator dials in a tolerable escape
distance and DCC picks the largest feasible confine size, activating far
fewer sensors than blanket coverage would.

This example sweeps requirements from blanket (Dmax = 0) to lenient
(Dmax = 3 Rc) on one deployment and reports active-node savings alongside
the geometrically measured worst hole.

Run:  python examples/surveillance_partial_coverage.py
"""

import random

from repro import (
    ConfineRequirement,
    dcc_schedule,
    evaluate_coverage,
    network_for_average_degree,
    outer_boundary_cycle,
)


def main() -> None:
    network = network_for_average_degree(320, 22.0, rc=1.0, rs=0.8, seed=11)
    boundary = outer_boundary_cycle(network)
    protected = set(network.boundary_nodes) | set(boundary)
    gamma = network.gamma
    print(
        f"network: {len(network.graph)} nodes, gamma = Rc/Rs = {gamma:.2f}, "
        f"{len(protected)} protected boundary nodes\n"
    )

    header = (
        f"{'escape dist':>12} {'tau':>4} {'active':>7} {'saved':>7} "
        f"{'measured Dmax':>14} {'bound':>6}"
    )
    print(header)
    print("-" * len(header))

    baseline_active = None
    for dmax in (0.0, 0.5, 1.0, 2.0, 3.0):
        requirement = ConfineRequirement(
            gamma=gamma, max_hole_diameter=dmax, rc=network.rc
        )
        tau = requirement.max_feasible_tau(tau_cap=9)
        if tau is None:
            print(f"{dmax:>12.1f}    - requirement infeasible at gamma={gamma:.2f}")
            continue
        result = dcc_schedule(
            network.graph, protected, tau, rng=random.Random(int(dmax * 10))
        )
        if baseline_active is None:
            baseline_active = result.num_active
        saved = 1.0 - result.num_active / baseline_active
        positions = [network.positions[v] for v in result.coverage_set]
        report = evaluate_coverage(
            positions, network.rs, network.target_area, resolution=90
        )
        bound = (tau - 2) * network.rc
        print(
            f"{dmax:>12.1f} {tau:>4} {result.num_active:>7} {saved:>6.1%} "
            f"{report.max_hole_diameter:>14.3f} {bound:>6.1f}"
        )

    print(
        "\nLarger tolerated escape distances let DCC use bigger confine "
        "sizes,\nkeeping fewer sensors awake while the measured worst hole "
        "stays within\nthe Proposition 1 bound."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Barrier coverage across a border belt, from connectivity alone.

Section III-C of the paper points out that confine coverage bridges
blanket and barrier coverage: barrier coverage is the limit with confine
size at network scale.  For sensing ratio gamma <= 2, communication
neighbours have overlapping sensing disks, so a communication path across
the belt is an unbroken sensing wall — and k vertex-disjoint paths give
k-barrier coverage.

Run:  python examples/border_barrier.py
"""

from repro.core.barrier import barrier_strength, schedule_barrier
from repro.network.deployment import Rectangle, build_network


def main() -> None:
    # a long, thin border belt: 6 x 1.6 units, unit communication range
    belt = Rectangle(0.0, 0.0, 6.0, 1.6)
    network = build_network(
        140, belt, rc=1.0, rs=0.6, seed=13, boundary_band=0.25
    )
    gamma = network.gamma
    left = {
        v for v, (x, __) in network.positions.items() if x <= 0.5
    }
    right = {
        v for v, (x, __) in network.positions.items() if x >= belt.x1 - 0.5
    }
    print(
        f"belt: {len(network.graph)} sensors, gamma = {gamma:.2f}, "
        f"{len(left)} left anchors, {len(right)} right anchors"
    )

    result = barrier_strength(network.graph, left, right, gamma)
    print(f"barrier strength: {result.strength} disjoint sensing walls\n")

    for k in (1, 2, 3):
        active = schedule_barrier(network.graph, left, right, gamma, k=k)
        if active is None:
            print(f"k={k}: infeasible")
            continue
        saving = 1.0 - len(active) / len(network.graph)
        print(
            f"k={k}: {len(active):3d} sensors awake "
            f"({saving:.0%} asleep) — intruders must cross {k} wall(s)"
        )

    print(
        "\nOnly the chain sensors stay awake; the rest of the belt sleeps "
        "until\nthe schedule rotates — the extreme point of the "
        "blanket-to-barrier spectrum."
    )


if __name__ == "__main__":
    main()

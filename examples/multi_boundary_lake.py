#!/usr/bin/env python3
"""Monitoring around an obstacle: multiply-connected target areas.

A sensor field around a lake has two boundaries — the outer perimeter and
the shoreline.  The inner "hole" is not a coverage defect, so the
criterion must not confuse it with a real void.  Following Section V-B, a
virtual apex node cone-fills the inner boundary; the repaired network is
simply-connected and the usual pipeline applies.

Run:  python examples/multi_boundary_lake.py
"""

import random

from repro import dcc_schedule, is_tau_partitionable, repair_inner_boundaries
from repro.core.vpt import deletable_vertices
from repro.network.topologies import annulus_network


def main() -> None:
    # A triangulated ring of sensors around the lake.
    annulus = annulus_network(outer_size=24, rings=5)
    graph = annulus.graph
    outer, inner = annulus.outer_boundary, annulus.inner_boundary
    print(
        f"lakeside network: {len(graph)} nodes, {graph.num_edges()} links, "
        f"outer ring {len(outer)}, shoreline ring {len(inner)}"
    )

    # Without declaring the shoreline, the lake looks like a giant hole.
    print(
        "\nouter boundary 3-partitionable with the shoreline undeclared? "
        f"{is_tau_partitionable(graph, [outer], 3)}"
    )
    print(
        "boundary *sum* (Proposition 3, both rings declared)?              "
        f"{is_tau_partitionable(graph, [outer, inner], 3)}"
    )

    # Cone-fill the shoreline (Section V-B) and schedule normally.
    repaired = repair_inner_boundaries(graph, [outer, inner])
    apex = repaired.apexes[0]
    print(
        f"\ncone-filled the shoreline with virtual apex {apex} "
        f"({repaired.graph.degree(apex)} virtual links)"
    )
    print(
        "outer boundary 3-partitionable after the repair? "
        f"{is_tau_partitionable(repaired.graph, [outer], 3)}"
    )

    tau = 6
    result = dcc_schedule(
        repaired.graph, repaired.protected, tau, rng=random.Random(0)
    )
    real_active = result.coverage_set - {apex}
    print(
        f"\nDCC at tau={tau}: {len(real_active)} real nodes stay active, "
        f"{result.num_removed} sleep"
    )
    assert is_tau_partitionable(result.active, [outer], tau)
    assert deletable_vertices(result.active, tau, exclude=repaired.protected) == []
    print("criterion preserved and fixpoint reached — the lake is never")
    print("mistaken for a coverage hole, and the ring is thinned safely.")


if __name__ == "__main__":
    main()

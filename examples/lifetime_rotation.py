#!/usr/bin/env python3
"""Prolonging network lifetime by rotating DCC coverage shifts.

The paper's energy argument, taken to its conclusion: instead of keeping
one coverage set awake forever, recompute an energy-aware coverage set
each shift — the scheduler puts the most-drained redundant nodes to sleep
— and let duty circulate until the survivors can no longer satisfy the
coverage criterion.

The demo uses a triangulated mesh, where every internal node is somewhere
redundant; deployments with structural bottleneck nodes have their
lifetime pinned to the battery capacity by those bottlenecks regardless of
scheduling (try it: swap in a sparse random deployment and the gain drops
to 1.0x).

Run:  python examples/lifetime_rotation.py
"""

import random

from repro.core.lifetime import rotation_simulation
from repro.network.energy import EnergyModel
from repro.network.topologies import triangulated_grid


def main() -> None:
    mesh = triangulated_grid(9, 9)
    boundary = mesh.outer_boundary
    model = EnergyModel(battery_capacity=10.0, active_cost=1.0, sleep_cost=0.1)
    print(
        f"mesh: {len(mesh.graph)} nodes ({len(boundary)} mains-powered "
        f"boundary), battery lasts {model.always_on_shifts} always-on shifts\n"
    )

    print(f"{'tau':>4} {'shifts':>7} {'gain':>6}  cause of death")
    print("-" * 44)
    for tau in (6, 7, 8):
        report = rotation_simulation(
            mesh.graph,
            [boundary],
            boundary,
            tau,
            model=model,
            rng=random.Random(tau),
            record_every=10**9,
        )
        print(
            f"{tau:>4} {report.shifts_survived:>7} "
            f"{report.lifetime_gain:>5.2f}x  {report.cause_of_death}"
        )

    print(
        "\nLarger confine sizes tolerate larger temporary voids, so more "
        "nodes can\nrest per shift and the rotation outlives the always-on "
        "baseline by more."
    )


if __name__ == "__main__":
    main()
